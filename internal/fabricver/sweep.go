package fabricver

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// pairSweep is the result of routing every ordered node pair exactly once:
// the channel-dependency edge set (over (channel, VC) vertices), the
// per-router used-turn sets, the reachability tally and the worst
// router-hop count with its witness pair. Pairs are visited in ascending
// (dst, src) order, so every derived field — including the order of the
// recorded failures and the worst-pair witness — is deterministic.
type pairSweep struct {
	pairs     int
	reached   int
	maxHops   int
	worstSrc  int
	worstDst  int
	depList   []depEdge // one entry per first use; cdg() sorts and dedups
	turns     map[topology.DeviceID]map[routing.Turn]bool
	failures  []string // first maxDetail route failures, in (dst, src) order
	failTotal int
}

// depEdge is one channel-dependency occurrence between (channel, VC)
// vertices a -> b.
type depEdge struct{ a, b int32 }

// walk statuses in the per-destination memo.
const (
	swUnknown = iota
	swOK
	swBad
)

// sweepPairs routes all ordered pairs through the tables. Route failures
// (holes, out-of-range or unwired ports, loops) are collected, not fatal —
// the sweep is also the engine behind the fault enumeration and the
// fuzzed-table verification, both of which must keep going to count the
// damage.
//
// Destination-indexed routing means the step taken at a device depends on
// (device, destination) only, so the sweep walks each destination's
// in-tree once with memoization: a walk stops at the first device whose
// verdict toward the destination is already known and inherits it. That
// turns the all-pairs cost from O(N² · path) into O(N · routers), which is
// what makes re-sweeping every single-fault degradation of a 500-node
// fabric tractable.
func sweepPairs(tb *routing.Tables) *pairSweep {
	net := tb.Net
	sw := &pairSweep{turns: make(map[topology.DeviceID]map[routing.Turn]bool)}
	v := tb.NumVC()
	n := net.NumNodes()
	nd := net.NumDevices()

	// Per-destination memo, invalidated by stamping (stamp == dst+1) so no
	// per-destination clearing pass is needed.
	stamp := make([]int, nd)
	status := make([]uint8, nd)
	hops := make([]int32, nd)                // router hops from the device to dst
	outCh := make([]topology.ChannelID, nd)  // channel the device forwards on
	outV := make([]int32, nd)                // its (channel, VC) CDG vertex
	failDev := make([]topology.DeviceID, nd) // device originating the failure
	why := make([]string, nd)                // reason, set on the originating device

	seen := make([]int, nd) // walk counter, for on-path loop detection
	walkID := 0
	path := make([]topology.DeviceID, 0, nd)

	// walk explores from router r until it reaches a memoized device, a
	// routing failure, or a loop, then seals the verdict onto every device
	// it visited. On success it also records the newly discovered
	// dependency edges and turns — each device's out-channel enters the
	// dependency set exactly once per destination, in the walk that first
	// reaches it.
	walk := func(r topology.DeviceID, dst, ds int) {
		walkID++
		path = path[:0]
		cur := r
		loopAt := -1
		for stamp[cur] != ds {
			if seen[cur] == walkID {
				for i, d := range path {
					if d == cur {
						loopAt = i
						break
					}
				}
				break
			}
			seen[cur] = walkID
			path = append(path, cur)
			dev := net.Device(cur)
			var sealWhy string
			if dev.Kind != topology.Router {
				// A walk only ever enters a node by mis-routing: the
				// destination node is pre-memoized and sources inject
				// outside walk.
				sealWhy = fmt.Sprintf("walk enters foreign end node %s", dev.Name)
			} else if ch, vc, err := tb.Next(cur, dst); err != nil {
				sealWhy = err.Error()
			} else {
				outCh[cur] = ch
				outV[cur] = int32(int(ch)*v + vc)
				cur = net.ChannelDst(ch).Device
				continue
			}
			stamp[cur] = ds
			status[cur] = swBad
			failDev[cur] = cur
			why[cur] = sealWhy
			path = path[:len(path)-1]
			break
		}
		if loopAt >= 0 {
			// Every device from the loop entry onward fails at the loop.
			entry := path[loopAt]
			why[entry] = fmt.Sprintf("routing loop through %s", net.Device(entry).Name)
			for _, d := range path[loopAt:] {
				stamp[d] = ds
				status[d] = swBad
				failDev[d] = entry
			}
			cur = entry
			path = path[:loopAt]
		}
		// cur is now sealed; unwind the explored prefix against its verdict.
		bst, bfail := status[cur], failDev[cur]
		h := hops[cur]
		for i := len(path) - 1; i >= 0; i-- {
			d := path[i]
			stamp[d] = ds
			status[d] = bst
			if bst == swBad {
				failDev[d] = bfail
				continue
			}
			h++ // every unsealed path device on an OK walk is a router
			hops[d] = h
		}
		if bst != swOK {
			return
		}
		// The newly sealed segment's dependencies and turns: consecutive
		// path devices, plus the junction into the memoized base (whose own
		// downstream dependencies were recorded when it was first sealed).
		for i := 1; i < len(path); i++ {
			sw.depList = append(sw.depList, depEdge{outV[path[i-1]], outV[path[i]]})
			sw.turn(path[i], net.ChannelDst(outCh[path[i-1]]).Port, net.ChannelSrc(outCh[path[i]]).Port)
		}
		if len(path) > 0 && net.Device(cur).Kind == topology.Router {
			last := path[len(path)-1]
			sw.depList = append(sw.depList, depEdge{outV[last], outV[cur]})
			sw.turn(cur, net.ChannelDst(outCh[last]).Port, net.ChannelSrc(outCh[cur]).Port)
		}
	}

	for dst := 0; dst < n; dst++ {
		ds := dst + 1
		dstDev := net.NodeByIndex(dst)
		stamp[dstDev] = ds
		status[dstDev] = swOK
		hops[dstDev] = 0

		for s := 0; s < n; s++ {
			if s == dst {
				continue
			}
			sw.pairs++
			src := net.NodeByIndex(s)
			// Injection: sources always take their single port; a node's
			// verdict as a walk victim (mis-routed into) differs from its
			// verdict as a source, so sources are never memo-read.
			ch, _, err := tb.Next(src, dst)
			if err != nil {
				sw.fail(s, dst, err.Error())
				continue
			}
			r0 := net.ChannelDst(ch).Device
			if stamp[r0] != ds {
				walk(r0, dst, ds)
			}
			if status[r0] == swBad {
				sw.fail(s, dst, why[failDev[r0]])
				continue
			}
			sw.reached++
			if h := int(hops[r0]); h > sw.maxHops {
				sw.maxHops, sw.worstSrc, sw.worstDst = h, s, dst
			}
			if r0 != dstDev {
				// Injection dependency and the first router's turn; the rest
				// of the path was recorded when the walk sealed it.
				injV := int32(int(ch) * v) // nodes inject on VC 0
				sw.depList = append(sw.depList, depEdge{injV, outV[r0]})
				sw.turn(r0, net.ChannelDst(ch).Port, net.ChannelSrc(outCh[r0]).Port)
			}
		}
	}
	return sw
}

// fail records one unreachable ordered pair.
func (sw *pairSweep) fail(s, dst int, reason string) {
	if len(sw.failures) < maxDetail {
		sw.failures = append(sw.failures, fmt.Sprintf("%d -> %d: %s", s, dst, reason))
	}
	sw.failTotal++
}

// turn records one used (in port, out port) turn at a router.
func (sw *pairSweep) turn(dev topology.DeviceID, in, out int) {
	m := sw.turns[dev]
	if m == nil {
		m = make(map[routing.Turn]bool)
		sw.turns[dev] = m
	}
	m[routing.Turn{In: in, Out: out}] = true
}

// cdg builds the dependency graph from the swept edge occurrences, sorted
// and deduplicated so the graph — and any cycle extracted from it — is
// reproducible.
func (sw *pairSweep) cdg(numChannels, numVC int) *graph.Digraph {
	edges := sw.depList
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	g := graph.NewDigraph(numChannels * numVC)
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		g.AddEdge(int(e.a), int(e.b))
	}
	return g
}

// cdgCheck proves deadlock freedom by CDG acyclicity. When the graph is
// cyclic the minimal dependency cycle is rendered channel by channel as
// the counterexample; when acyclic, the Dally–Seitz numbering's size is
// recorded as the certificate.
func (sw *pairSweep) cdgCheck(net *topology.Network, numVC int, violate func(check, format string, args ...any)) CDGCheck {
	g := sw.cdg(net.NumChannels(), numVC)
	cc := CDGCheck{Vertices: g.N(), Deps: g.M()}
	if cycle, cyclic := g.ShortestCycle(); cyclic {
		cc.MinimalCycle = make([]string, len(cycle))
		for i, vtx := range cycle {
			cc.MinimalCycle[i] = vcChannelString(net, vtx, numVC)
		}
		violate("cdg", "channel dependency graph has a cycle; minimal cycle (%d channels): %s",
			len(cycle), joinCycle(cc.MinimalCycle))
		return cc
	}
	cc.Acyclic = true
	order, ok := g.TopoSort()
	if !ok {
		// Unreachable: ShortestCycle and TopoSort agree on acyclicity.
		violate("cdg", "internal error: acyclic graph failed to topo-sort")
		return cc
	}
	cc.CertificateSize = len(order)
	return cc
}

// reachCheck turns the sweep's tally into the endpoint-reachability
// verdict: every ordered pair routed, within the analytical hop bound.
func (sw *pairSweep) reachCheck(net *topology.Network, bound int, violate func(check, format string, args ...any)) ReachCheck {
	rc := ReachCheck{
		Pattern:     "cpu-disk-all-pairs",
		Pairs:       sw.pairs,
		Unreachable: sw.failTotal,
		MaxHops:     sw.maxHops,
	}
	if sw.maxHops > 0 {
		rc.WorstPair = fmt.Sprintf("%s -> %s",
			net.Device(net.NodeByIndex(sw.worstSrc)).Name,
			net.Device(net.NodeByIndex(sw.worstDst)).Name)
	}
	for _, f := range sw.failures {
		violate("reachability", "unreachable pair: %s", f)
	}
	if sw.failTotal > maxDetail {
		violate("reachability", "unreachable pairs:%s", capNote(sw.failTotal))
	}
	if sw.maxHops > bound {
		violate("reachability", "route %s takes %d router hops, exceeding the analytical bound %d",
			rc.WorstPair, sw.maxHops, bound)
	}
	rc.OK = sw.failTotal == 0 && sw.maxHops <= bound
	return rc
}

// disablesCheck verifies §2.4's enforcement property against the System's
// loaded path-disable registers: every turn the swept dependencies use
// must be enabled, and nothing beyond those turns may be enabled — the
// hardware permits exactly the analyzed dependency structure.
func (sw *pairSweep) disablesCheck(sys *core.System, violate func(check, format string, args ...any)) DisablesCheck {
	dc := DisablesCheck{}
	for _, m := range sw.turns {
		dc.UsedTurns += len(m)
	}
	enabled, _ := sys.Disables.Counts()
	dc.EnabledTurns = enabled

	net := sys.Net
	mismatches := 0
	// Deterministic order: devices ascending, then ports.
	for _, dev := range net.Devices() {
		if dev.Kind != topology.Router {
			continue
		}
		used := sw.turns[dev.ID]
		for in := 0; in < dev.Ports; in++ {
			for out := 0; out < dev.Ports; out++ {
				if in == out {
					continue
				}
				u := used[routing.Turn{In: in, Out: out}]
				a := sys.Disables.Allowed(dev.ID, in, out)
				if u && !a {
					if mismatches < maxDetail {
						violate("disables", "turn %d->%d at %s is used by a route but disabled", in, out, dev.Name)
					}
					mismatches++
				}
				if !u && a {
					if mismatches < maxDetail {
						violate("disables", "turn %d->%d at %s is enabled but no route uses it (exceeds the minimal disable set)", in, out, dev.Name)
					}
					mismatches++
				}
			}
		}
	}
	if mismatches > maxDetail {
		violate("disables", "turn mismatches:%s", capNote(mismatches))
	}
	dc.OK = mismatches == 0
	return dc
}

// vcChannelString renders a (channel, VC) CDG vertex with device and port
// names; the VC suffix is omitted for single-VC routings.
func vcChannelString(net *topology.Network, vertex, numVC int) string {
	ch := topology.ChannelID(vertex / numVC)
	if numVC == 1 {
		return net.ChannelString(ch)
	}
	return fmt.Sprintf("%s vc%d", net.ChannelString(ch), vertex%numVC)
}

func joinCycle(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += " => "
		}
		out += l
	}
	return out + " => (back to start)"
}
