package fabricver

import (
	"fmt"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
)

// enumerateFaults re-proves the fabric under every single failure: each
// link in turn, then each router in turn (a router failure takes all its
// links with it). For every fault the degraded topology is decomposed into
// connected components; each surviving component with at least two end
// nodes is re-routed from scratch with generic up*/down* tables — the
// discipline that works on arbitrary topologies, hence on arbitrary
// degradations — its path-disables are recomputed via internal/router,
// and reachability, the hop bound, and CDG acyclicity are re-proved.
//
// Endpoints with no path in the degraded topology (the far side of a
// node's only link, the nodes of a failed router, a partitioned half of a
// U=1 tree) are structural losses no routing could avoid; they are counted
// in SeveredPairs, and the fault still "survives" if everything that
// remained connected re-routes deadlock-free.
//
// Faults are independent, so the enumeration fans out over a worker pool
// (runner.Map merges in fault order); the certificate is byte-identical
// for every worker count.
func enumerateFaults(net *topology.Network, workers int, violate func(check, format string, args ...any)) FaultCheck {
	nLinks := net.NumLinks()
	var routers []topology.DeviceID
	for _, d := range net.Devices() {
		if d.Kind == topology.Router {
			routers = append(routers, d.ID)
		}
	}

	type outcome struct {
		survived     bool
		severedPairs int
		violations   []string
	}

	faults := nLinks + len(routers)
	results, err := runner.Map(runner.Config{Workers: workers}, faults, func(i int) (outcome, error) {
		var o outcome
		var desc string
		var skipLink topology.LinkID = -1
		var skipDev topology.DeviceID = -1
		if i < nLinks {
			skipLink = topology.LinkID(i)
			l := net.Link(skipLink)
			desc = fmt.Sprintf("link %s[%d]--%s[%d] down",
				net.Device(l.A.Device).Name, l.A.Port, net.Device(l.B.Device).Name, l.B.Port)
		} else {
			skipDev = routers[i-nLinks]
			desc = fmt.Sprintf("router %s down", net.Device(skipDev).Name)
		}
		o.survived, o.severedPairs, o.violations = checkFault(net, skipLink, skipDev, desc)
		return o, nil
	})
	if err != nil {
		// Unreachable: the fault closure never returns an error.
		violate("faults", "fault enumeration failed: %v", err)
		return FaultCheck{}
	}

	fc := FaultCheck{OK: true}
	detail := 0
	for i, o := range results {
		class := &fc.LinkFaults
		if i >= nLinks {
			class = &fc.RouterFaults
		}
		class.Tried++
		class.SeveredPairs += o.severedPairs
		if o.survived {
			class.Survived++
		} else {
			fc.OK = false
			for _, v := range o.violations {
				if detail < maxDetail {
					violate("faults", "%s", v)
				}
				detail++
			}
		}
	}
	if detail > maxDetail {
		violate("faults", "fault violations:%s", capNote(detail))
	}
	return fc
}

// checkFault verifies one degraded fabric. It returns whether the fault is
// survived, the count of structurally severed ordered endpoint pairs, and
// the rendered violations (device names refer to the original fabric).
func checkFault(net *topology.Network, skipLink topology.LinkID, skipDev topology.DeviceID, desc string) (survived bool, severed int, violations []string) {
	comps := survivingComponents(net, skipLink, skipDev)

	// Structural severance: ordered endpoint pairs that no longer share a
	// component. Every end node of the original fabric still exists (a
	// failed router keeps its nodes, isolated); pairs inside one component
	// must re-route, pairs across components are expected losses.
	total := net.NumNodes()
	severed = total * (total - 1)
	for _, c := range comps {
		severed -= len(c.nodes) * (len(c.nodes) - 1)
	}

	survived = true
	for _, c := range comps {
		if len(c.nodes) < 2 {
			continue // nothing to route inside a singleton
		}
		for _, v := range verifyComponent(net, c, skipLink, desc) {
			violations = append(violations, v)
			survived = false
		}
	}
	return survived, severed, violations
}

// component is one connected piece of the degraded fabric, devices in
// ascending original-ID order.
type component struct {
	devices []topology.DeviceID
	nodes   []topology.DeviceID
	routers []topology.DeviceID
}

// survivingComponents removes the faulted link or router and decomposes
// what remains into connected components, each listed in ascending
// original device order so downstream rebuilds are deterministic.
func survivingComponents(net *topology.Network, skipLink topology.LinkID, skipDev topology.DeviceID) []component {
	n := net.NumDevices()
	parentOf := make([]int, n)
	for i := range parentOf {
		parentOf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parentOf[x] != x {
			parentOf[x] = parentOf[parentOf[x]]
			x = parentOf[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parentOf[rb] = ra
		}
	}
	for _, l := range net.Links() {
		if l.ID == skipLink || l.A.Device == skipDev || l.B.Device == skipDev {
			continue
		}
		union(int(l.A.Device), int(l.B.Device))
	}

	byRoot := make(map[int]*component)
	var order []int
	for _, d := range net.Devices() {
		if d.ID == skipDev {
			continue
		}
		r := find(int(d.ID))
		c := byRoot[r]
		if c == nil {
			c = &component{}
			byRoot[r] = c
			order = append(order, r)
		}
		c.devices = append(c.devices, d.ID)
		if d.Kind == topology.Node {
			c.nodes = append(c.nodes, d.ID)
		} else {
			c.routers = append(c.routers, d.ID)
		}
	}
	// Device iteration is ascending, so `order` (roots by first sighting)
	// and each component's member slices are already deterministic.
	comps := make([]component, 0, len(order))
	for _, r := range order {
		comps = append(comps, *byRoot[r])
	}
	return comps
}

// verifyComponent rebuilds one surviving component as a standalone
// network, routes it with up*/down* tables rooted at its lowest-numbered
// router, recomputes the path-disables, and re-proves reachability, the
// degraded hop bound and CDG acyclicity. Violations are rendered with the
// original device names, prefixed by the fault description.
func verifyComponent(net *topology.Network, c component, skipLink topology.LinkID, desc string) (out []string) {
	// The verifier's contract is "never panic, always produce a
	// certificate": a degradation odd enough to trip a builder panic
	// (possible with hand-written file: topologies) becomes a violation.
	defer func() {
		if r := recover(); r != nil {
			out = append(out, fmt.Sprintf("%s: degraded fabric cannot be re-routed: %v", desc, r))
		}
	}()
	if len(c.routers) == 0 {
		// Two or more nodes with no router cannot exist: nodes have a
		// single port each, so they can only interconnect through routers.
		return []string{fmt.Sprintf("%s: component with %d nodes has no router", desc, len(c.nodes))}
	}

	sub, newID := rebuild(net, c, skipLink)
	tb := routing.UpDownGeneric(sub, newID[c.routers[0]])

	// The degraded fabric is routed up*/down*, so its analytical bound is
	// 2*diameter+1 over the degraded router graph.
	bound, _ := hopBound(tb.Algorithm, routerDiameter(sub))

	sw := sweepPairs(tb)
	for _, f := range sw.failures {
		out = append(out, fmt.Sprintf("%s: degraded fabric unreachable pair: %s", desc, f))
	}
	if sw.failTotal > maxDetail {
		out = append(out, fmt.Sprintf("%s: degraded fabric unreachable pairs:%s", desc, capNote(sw.failTotal)))
	}
	if sw.maxHops > bound {
		out = append(out, fmt.Sprintf("%s: degraded route takes %d router hops, exceeding the up*/down* bound %d",
			desc, sw.maxHops, bound))
	}
	if cycle, cyclic := sw.cdg(sub.NumChannels(), tb.NumVC()).ShortestCycle(); cyclic {
		lines := make([]string, len(cycle))
		for i, vtx := range cycle {
			lines[i] = vcChannelString(sub, vtx, tb.NumVC())
		}
		out = append(out, fmt.Sprintf("%s: degraded CDG has a cycle; minimal cycle (%d channels): %s",
			desc, len(cycle), joinCycle(lines)))
	}

	// Recompute the path-disables for the degraded fabric (§2.4: the
	// disable registers are reloaded to match the new tables). The swept
	// turn sets are exactly the new dependency structure; a mismatch here
	// means FromTurns and the sweep disagree on the fabric's turns.
	dis := router.FromTurns(sub, sw.turns)
	enabled, _ := dis.Counts()
	used := 0
	for _, m := range sw.turns {
		used += len(m)
	}
	if enabled != used {
		out = append(out, fmt.Sprintf("%s: recomputed disables enable %d turns but routes use %d", desc, enabled, used))
	}
	return out
}

// rebuild copies a component into a fresh Network. Devices keep their
// names, port counts and relative order (so node addresses are ascending
// in the original addresses), and links keep their port numbers; only the
// dense IDs change. The returned map translates original device IDs.
func rebuild(net *topology.Network, c component, skipLink topology.LinkID) (*topology.Network, map[topology.DeviceID]topology.DeviceID) {
	sub := topology.New(net.Name + " (degraded)")
	newID := make(map[topology.DeviceID]topology.DeviceID, len(c.devices))
	for _, id := range c.devices {
		d := net.Device(id)
		if d.Kind == topology.Router {
			newID[id] = sub.AddRouter(d.Name, d.Ports)
		} else {
			newID[id] = sub.AddNode(d.Name)
		}
	}
	for _, l := range net.Links() {
		if l.ID == skipLink {
			continue // the faulted link stays down even if both ends survive
		}
		na, aOK := newID[l.A.Device]
		nb, bOK := newID[l.B.Device]
		if !aOK || !bOK {
			continue
		}
		sub.Connect(na, l.A.Port, nb, l.B.Port)
	}
	return sub, newID
}
