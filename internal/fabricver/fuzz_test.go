package fabricver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// FuzzMutatedTetra drives the verifier's never-panic contract: arbitrary
// single-entry corruptions of the tetrahedron's routing tables — holes,
// out-of-range ports, self-loops, mis-ejections — must always yield a
// certificate that either passes every check or carries a concrete
// counterexample, and the two outcomes must agree with the OK flag. This
// is the fuzzing face of §2.4: the paper's hardware survives corrupted
// tables by path-disables; the verifier must survive them by diagnosis.
func FuzzMutatedTetra(f *testing.F) {
	f.Add(uint8(0), uint8(0), int16(-1))
	f.Add(uint8(1), uint8(3), int16(99))
	f.Add(uint8(2), uint8(5), int16(0))
	f.Add(uint8(3), uint8(7), int16(5))
	f.Fuzz(func(t *testing.T, routerSel, dstSel uint8, port int16) {
		sys, _, err := core.ParseSystem("fat-fract:levels=1")
		if err != nil {
			t.Fatal(err)
		}
		net := sys.Net
		var routers []topology.DeviceID
		for _, d := range net.Devices() {
			if d.Kind == topology.Router {
				routers = append(routers, d.ID)
			}
		}
		r := routers[int(routerSel)%len(routers)]
		dst := int(dstSel) % net.NumNodes()
		sys.Tables.SetOutPort(r, dst, int(port))

		cert := Verify(sys, "fuzz", Options{Workers: 1})
		if cert.OK != (len(cert.Violations) == 0) {
			t.Fatalf("OK=%v but %d violations", cert.OK, len(cert.Violations))
		}
		if !cert.Tables.OK && cert.OK {
			t.Fatal("bad tables but certificate OK")
		}
		if _, err := MarshalCertificate(cert); err != nil {
			t.Fatalf("certificate does not marshal: %v", err)
		}
	})
}
