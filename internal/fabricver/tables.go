package fabricver

import (
	"repro/internal/routing"
	"repro/internal/topology"
)

// checkTables walks every (router, destination) entry of every routing
// table to termination, guarding against the corruption modes §2.4's
// path-disables defend against: missing entries (-1 holes), out-of-range
// ports, unwired ports, walks that eject into an end node that is not the
// destination ("dead" entries), and walks that revisit a router or never
// terminate ("looping" entries, including direct self-loops where an entry
// routes a packet straight back). Walks must also respect the analytical
// hop bound: a table entry no node-to-node route exercises is still part
// of the fabric's state and must obey the same discipline.
//
// The walk count is routers × destinations, so every table entry is read
// at least once from its own router — a stronger property than all-pairs
// reachability, which only reads the entries that lie on some node route.
func checkTables(tb *routing.Tables, bound int, violate func(check, format string, args ...any)) TableCheck {
	net := tb.Net
	tc := TableCheck{}
	detail := 0
	report := func(format string, args ...any) {
		if detail < maxDetail {
			violate("tables", format, args...)
		}
		detail++
	}

	nNodes := net.NumNodes()
	for _, dev := range net.Devices() {
		if dev.Kind != topology.Router {
			continue
		}
		tc.Routers++
		for dst := 0; dst < nNodes; dst++ {
			tc.Entries++
			dstName := net.Device(net.NodeByIndex(dst)).Name
			dstDev := net.NodeByIndex(dst)
			hops := 0
			cur := dev.ID
			visited := map[topology.DeviceID]bool{}
			var path []string
			terminated := false
			for {
				if visited[cur] {
					tc.Loops++
					report("entry (%s, %s): walk revisits %s (self-looping entry; path %v)",
						dev.Name, dstName, net.Device(cur).Name, path)
					break
				}
				visited[cur] = true
				path = append(path, net.Device(cur).Name)
				hops++
				port := tb.OutPort(cur, dst)
				if port < 0 {
					tc.Dead++
					report("entry (%s, %s): table hole at %s (no entry for the destination)",
						dev.Name, dstName, net.Device(cur).Name)
					break
				}
				if port >= net.Device(cur).Ports {
					tc.Dead++
					report("entry (%s, %s): %s routes out port %d but has only %d ports",
						dev.Name, dstName, net.Device(cur).Name, port, net.Device(cur).Ports)
					break
				}
				ch, wired := net.ChannelFromPort(cur, port)
				if !wired {
					tc.Dead++
					report("entry (%s, %s): %s port %d is unwired (dead entry)",
						dev.Name, dstName, net.Device(cur).Name, port)
					break
				}
				next := net.ChannelDst(ch).Device
				if net.Device(next).Kind == topology.Node {
					if next == dstDev {
						terminated = true // ejected at the destination
					} else {
						tc.Dead++
						report("entry (%s, %s): walk ejects into wrong end node %s (dead entry)",
							dev.Name, dstName, net.Device(next).Name)
					}
					break
				}
				cur = next
			}
			if !terminated {
				continue
			}
			if hops > tc.MaxWalk {
				tc.MaxWalk = hops
			}
			if hops > bound {
				report("entry (%s, %s): walk visits %d routers, exceeding the analytical bound %d (path %v)",
					dev.Name, dstName, hops, bound, path)
			}
		}
	}
	if detail > maxDetail {
		violate("tables", "table consistency:%s", capNote(detail))
	}
	tc.OK = detail == 0
	return tc
}
