package fabricver

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden certificate fixtures")

// goldenSpecs are the specs whose full JSON certificates (faults included)
// are pinned byte for byte: the paper's tetrahedron building block, the
// two-level fractahedron, and the 4-2 fat tree it is compared against.
var goldenSpecs = []string{
	"fat-fract:levels=1",
	"fat-fract:levels=2",
	"fattree:d=4,u=2,nodes=64",
}

// TestGoldenCertificates pins the exact certificate bytes for the three
// reference fabrics and proves the determinism contract the schema
// promises: the encoding is identical across runs and across fault-pool
// worker counts.
func TestGoldenCertificates(t *testing.T) {
	for _, spec := range goldenSpecs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			cert, err := VerifySpec(spec, Options{Workers: 1})
			if err != nil {
				t.Fatalf("VerifySpec: %v", err)
			}
			got, err := MarshalCertificate(cert)
			if err != nil {
				t.Fatalf("MarshalCertificate: %v", err)
			}

			// Same fabric, different worker count: byte-identical.
			cert4, err := VerifySpec(spec, Options{Workers: 4})
			if err != nil {
				t.Fatalf("VerifySpec(workers=4): %v", err)
			}
			got4, err := MarshalCertificate(cert4)
			if err != nil {
				t.Fatalf("MarshalCertificate(workers=4): %v", err)
			}
			if !bytes.Equal(got, got4) {
				t.Fatalf("certificate differs between 1 and 4 workers:\n--- w=1\n%s\n--- w=4\n%s", got, got4)
			}

			name := strings.TrimSuffix(CertFileName(spec), ".json") + ".golden.json"
			path := filepath.Join("testdata", "certs", name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("certificate drifted from golden %s;\nre-run with -update if the change is intended\n--- got\n%s\n--- want\n%s",
					path, got, want)
			}
		})
	}
}
