// Package servernet models the transaction layer the paper describes in
// §1: ServerNet provides "high-speed communications from processor to
// processor, processor to I/O device, or I/O device to other I/O devices",
// with every data packet acknowledged and with guaranteed in-order delivery
// carrying the protocol ("the interrupt packet cannot be allowed to pass
// the data on the way to the CPU"). The layer drives the flit-level
// simulator through its delivery hook: writes emit a data packet and expect
// an acknowledgment back, reads emit a request and expect a data response,
// and interrupts ride as small packets whose ordering against preceding
// data transfers the layer checks explicitly.
package servernet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Kind is the transaction type.
type Kind uint8

const (
	// Write transfers DataFlits from Src to Dst and completes when the
	// acknowledgment returns to Src.
	Write Kind = iota
	// Read sends a request from Src to Dst and completes when Dst's data
	// response of DataFlits arrives back at Src.
	Read
	// Interrupt is a controller-to-CPU notification packet that must not
	// overtake the data the same controller sent earlier.
	Interrupt
)

// String names the transaction kind for display.
func (k Kind) String() string {
	switch k {
	case Write:
		return "write"
	case Read:
		return "read"
	case Interrupt:
		return "interrupt"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet sizes in flits for the protocol's control traffic.
const (
	AckFlits     = 2
	RequestFlits = 3
)

// Transaction is one protocol operation.
type Transaction struct {
	ID        int
	Kind      Kind
	Src, Dst  int
	DataFlits int
	IssueAt   int // cycle the first packet may inject
}

// Outcome reports a completed transaction.
type Outcome struct {
	Transaction
	Issued    int // cycle of first injection eligibility
	Completed int // cycle the completing packet (ack/response/delivery) arrived
}

// Result is the transaction-layer summary of a run.
type Result struct {
	Sim       sim.Result
	Outcomes  []Outcome
	Completed int
	// InterruptOvertakes counts interrupts delivered before data the same
	// source issued earlier toward the same CPU — zero on any fixed-path
	// ServerNet configuration, the §3.3 guarantee.
	InterruptOvertakes int
	AvgLatency         float64 // cycles from issue to completion
}

// Engine schedules transactions over a core.System.
type Engine struct {
	sys *core.System
	cfg sim.Config

	txs []Transaction
}

// NewEngine creates a transaction engine over a routed system.
func NewEngine(sys *core.System, cfg sim.Config) *Engine {
	return &Engine{sys: sys, cfg: cfg}
}

// WriteTx queues a write transaction and returns its ID.
func (e *Engine) WriteTx(src, dst, dataFlits, issueAt int) int {
	return e.add(Transaction{Kind: Write, Src: src, Dst: dst, DataFlits: dataFlits, IssueAt: issueAt})
}

// ReadTx queues a read transaction and returns its ID.
func (e *Engine) ReadTx(src, dst, dataFlits, issueAt int) int {
	return e.add(Transaction{Kind: Read, Src: src, Dst: dst, DataFlits: dataFlits, IssueAt: issueAt})
}

// InterruptTx queues an interrupt notification and returns its ID.
func (e *Engine) InterruptTx(src, dst, issueAt int) int {
	return e.add(Transaction{Kind: Interrupt, Src: src, Dst: dst, DataFlits: AckFlits, IssueAt: issueAt})
}

func (e *Engine) add(t Transaction) int {
	t.ID = len(e.txs)
	e.txs = append(e.txs, t)
	return t.ID
}

// packetRole ties an in-flight packet back to its transaction phase.
type packetRole struct {
	tx    int
	phase int // 0 = initial packet, 1 = ack/response
}

// Run executes all queued transactions to completion.
func (e *Engine) Run() (Result, error) {
	s := sim.New(e.sys.Net, e.sys.Disables, e.cfg)

	// Map (src, dst, seq-within-pair) to roles as packets are added; the
	// delivery hook consumes roles in FIFO order per pair, which matches
	// the in-order delivery the network guarantees per pair.
	roles := make(map[[2]int][]packetRole)
	addPacket := func(src, dst, flits, when int, role packetRole) error {
		spec := sim.PacketSpec{Src: src, Dst: dst, Flits: flits, InjectCycle: when}
		r, err := e.sys.Tables.Route(src, dst)
		if err != nil {
			return err
		}
		if err := s.AddPacket(spec, r); err != nil {
			return err
		}
		roles[[2]int{src, dst}] = append(roles[[2]int{src, dst}], role)
		return nil
	}

	res := Result{}
	outcomes := make([]Outcome, len(e.txs))
	dataDelivered := make(map[[2]int]int) // (controller, cpu) -> data packets landed
	// For each interrupt, how many same-pair writes were queued before it
	// and therefore must land first.
	mustPrecede := make([]int, len(e.txs))
	counts := make(map[[2]int]int)
	for i, tx := range e.txs {
		key := [2]int{tx.Src, tx.Dst}
		switch tx.Kind {
		case Write:
			counts[key]++
		case Interrupt:
			mustPrecede[i] = counts[key]
		}
	}
	var hookErr error

	s.OnDelivered(func(spec sim.PacketSpec, now int) {
		key := [2]int{spec.Src, spec.Dst}
		q := roles[key]
		if len(q) == 0 {
			hookErr = fmt.Errorf("servernet: delivery with no pending role for %d->%d", spec.Src, spec.Dst)
			return
		}
		role := q[0]
		roles[key] = q[1:]
		tx := &e.txs[role.tx]
		switch {
		case tx.Kind == Write && role.phase == 0:
			dataDelivered[key]++
			// Data arrived: emit the acknowledgment back to the source.
			if err := addPacket(tx.Dst, tx.Src, AckFlits, now+1, packetRole{role.tx, 1}); err != nil {
				hookErr = err
			}
		case tx.Kind == Read && role.phase == 0:
			// Request arrived: emit the data response.
			if err := addPacket(tx.Dst, tx.Src, tx.DataFlits, now+1, packetRole{role.tx, 1}); err != nil {
				hookErr = err
			}
		case tx.Kind == Interrupt:
			// The interrupt must not beat data the controller issued
			// earlier toward this CPU (§3.3's motivating requirement).
			if dataDelivered[key] < mustPrecede[role.tx] {
				res.InterruptOvertakes++
			}
			outcomes[role.tx] = Outcome{Transaction: *tx, Issued: tx.IssueAt, Completed: now}
			res.Completed++
		default: // phase 1: ack or response back at the initiator
			outcomes[role.tx] = Outcome{Transaction: *tx, Issued: tx.IssueAt, Completed: now}
			res.Completed++
		}
	})

	for i := range e.txs {
		tx := &e.txs[i]
		switch tx.Kind {
		case Write:
			if err := addPacket(tx.Src, tx.Dst, tx.DataFlits, tx.IssueAt, packetRole{i, 0}); err != nil {
				return res, err
			}
		case Read:
			if err := addPacket(tx.Src, tx.Dst, RequestFlits, tx.IssueAt, packetRole{i, 0}); err != nil {
				return res, err
			}
		case Interrupt:
			if err := addPacket(tx.Src, tx.Dst, AckFlits, tx.IssueAt, packetRole{i, 0}); err != nil {
				return res, err
			}
		}
	}

	res.Sim = s.Run()
	if hookErr != nil {
		return res, hookErr
	}
	res.Outcomes = outcomes
	total := 0
	counted := 0
	for _, o := range outcomes {
		if o.Completed > 0 {
			total += o.Completed - o.Issued
			counted++
		}
	}
	if counted > 0 {
		res.AvgLatency = float64(total) / float64(counted)
	}
	return res, nil
}
