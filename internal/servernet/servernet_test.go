package servernet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func fractSystem(t *testing.T) *core.System {
	t.Helper()
	sys, _, err := core.NewFatFractahedron(1)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// A write completes when its ack returns: latency spans the round trip.
func TestWriteAcknowledged(t *testing.T) {
	sys := fractSystem(t)
	e := NewEngine(sys, sim.Config{})
	id := e.WriteTx(0, 7, 16, 0)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d", res.Completed)
	}
	o := res.Outcomes[id]
	fwd, _ := sys.Tables.Route(0, 7)
	rev, _ := sys.Tables.Route(7, 0)
	// Round trip: the data tail lands at cycle fwd.hops+flits, the ack
	// injects the following cycle and lands rev.hops+AckFlits later.
	want := (fwd.RouterHops() + 16) + 1 + (rev.RouterHops() + AckFlits)
	if o.Completed != want {
		t.Errorf("write completion = %d, want %d", o.Completed, want)
	}
	if res.Sim.Delivered != 2 {
		t.Errorf("packets delivered = %d, want 2 (data + ack)", res.Sim.Delivered)
	}
}

// A read completes when the data response arrives.
func TestReadResponse(t *testing.T) {
	sys := fractSystem(t)
	e := NewEngine(sys, sim.Config{})
	id := e.ReadTx(2, 5, 32, 0)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Outcomes[id].Completed == 0 {
		t.Fatalf("read did not complete: %+v", res)
	}
	if res.Sim.Delivered != 2 {
		t.Errorf("packets = %d, want request + response", res.Sim.Delivered)
	}
}

// §3.3's motivating scenario: a disk controller writes data to a CPU and
// then raises an interrupt. On fixed-path ServerNet routing the interrupt
// can never overtake the data, regardless of congestion.
func TestInterruptNeverOvertakesData(t *testing.T) {
	sys := fractSystem(t)
	e := NewEngine(sys, sim.Config{FIFODepth: 2})
	controller, cpu := 6, 1
	// Background congestion on the same paths.
	for i := 0; i < 4; i++ {
		e.WriteTx(7, cpu, 24, 0)
	}
	e.WriteTx(controller, cpu, 64, 0)
	e.InterruptTx(controller, cpu, 1)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.InterruptOvertakes != 0 {
		t.Errorf("interrupt overtook its data %d times", res.InterruptOvertakes)
	}
	if res.Completed != 6 {
		t.Errorf("completed = %d, want 6", res.Completed)
	}
	if res.Sim.InOrderViolations != 0 {
		t.Errorf("network order violations = %d", res.Sim.InOrderViolations)
	}
}

// Sustained transaction mix across the 16-node system: everything
// completes, in order, without deadlock.
func TestTransactionMixUnderLoad(t *testing.T) {
	sys := fractSystem(t)
	e := NewEngine(sys, sim.Config{FIFODepth: 4})
	n := sys.Net.NumNodes()
	txCount := 0
	for s := 0; s < n; s++ {
		for k := 0; k < 3; k++ {
			d := (s + 3 + 2*k) % n
			if d == s {
				continue
			}
			switch k % 3 {
			case 0:
				e.WriteTx(s, d, 12, k*5)
			case 1:
				e.ReadTx(s, d, 20, k*5)
			case 2:
				e.WriteTx(s, d, 8, k*5)
				e.InterruptTx(s, d, k*5+1)
				txCount++
			}
			txCount++
		}
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.Deadlocked {
		t.Fatal("transaction mix deadlocked")
	}
	if res.Completed != txCount {
		t.Errorf("completed %d of %d transactions", res.Completed, txCount)
	}
	if res.InterruptOvertakes != 0 {
		t.Errorf("interrupt overtakes = %d", res.InterruptOvertakes)
	}
	if res.AvgLatency <= 0 {
		t.Error("no latency recorded")
	}
}

// The engine works over any routed system, e.g. the 64-node fat tree.
func TestTransactionsOnFatTree(t *testing.T) {
	sys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sys, sim.Config{})
	e.WriteTx(48, 0, 16, 0)
	e.ReadTx(12, 60, 24, 0)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Sim.Deadlocked {
		t.Fatalf("%+v", res)
	}
}

func TestKindStrings(t *testing.T) {
	if Write.String() != "write" || Read.String() != "read" || Interrupt.String() != "interrupt" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
