// Package reterrfix is a deliberately-bad fixture for the reterr
// analyzer: error returns dropped on the floor next to the sanctioned
// handling forms.
package reterrfix

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func produce() error                { return nil }
func produceBoth() (string, error)  { return "", nil }
func produceValue() int             { return 0 }
func sink(w *os.File, rows []string) error {
	for _, r := range rows {
		if _, err := w.WriteString(r); err != nil {
			return err
		}
	}
	return nil
}

func droppedPlain() {
	produce() // want `drops its error result`
}

func droppedTuple() {
	produceBoth() // want `drops its error result`
}

func droppedDefer(f *os.File) {
	defer f.Close() // want `drops its error result`
	produceValue()  // no error in the signature: nothing to drop
}

func droppedGo(f *os.File, rows []string) {
	go sink(f, rows) // want `drops its error result`
}

func droppedMethod(f *os.File) {
	f.Sync() // want `drops its error result`
}

func handled(f *os.File) error {
	if err := produce(); err != nil {
		return err
	}
	_, err := produceBoth()
	return err
}

func assignedAway() {
	// Explicit discard states the decision; reterr stays quiet.
	_ = produce()
	_, _ = produceBoth()
}

func exemptForms(sb *strings.Builder, buf *bytes.Buffer) {
	// fmt's writer errors are best-effort for terminal output, and the
	// in-memory builders never fail.
	fmt.Println("rows written")
	fmt.Fprintf(os.Stderr, "warning\n")
	sb.WriteString("a")
	buf.WriteString("b")
}

func suppressed() {
	produce() //simlint:ignore reterr fixture exercises the directive
}
