package reterr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers/reterr"
)

func TestReterrFixture(t *testing.T) {
	findings := analysistest.Run(t, reterr.Analyzer, analysistest.TestData(t), "reterr")
	if len(findings) < 5 {
		t.Fatalf("reterr reported %d findings on the bad fixture, want >= 5", len(findings))
	}
}
