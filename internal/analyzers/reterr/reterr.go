// Package reterr flags call statements that silently drop an error return
// in the experiment engine and the command-line front ends. A swallowed
// error there does not crash — it quietly produces an incomplete sweep, a
// half-written certificate file, or a table row that looks healthy, which
// is precisely the failure mode a reproduction repository cannot afford:
// the numbers must either be right or visibly absent. Every error must be
// handled, returned, or explicitly assigned away (`_ = f()` states the
// decision; a bare `f()` hides it).
package reterr

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analyzers/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "reterr",
	Doc: "flag dropped error returns in internal/experiments and cmd/; handle the error " +
		"or assign it to _ to make the decision visible",
	Run: run,
}

// inScope limits the check to the packages where a dropped error corrupts
// results silently: the experiment engine and every command front end.
// Packages outside the repo module (the testdata fixtures) are always in
// scope so the fixture can exercise every diagnostic.
func inScope(pkgPath string) bool {
	if !strings.HasPrefix(pkgPath, "repro/") {
		return true
	}
	return pkgPath == "repro/internal/experiments" || strings.HasPrefix(pkgPath, "repro/cmd/")
}

// exemptPkgs are stdlib packages whose error returns are vestigial for
// this repository's usage: fmt printing errors surface only on broken
// writers, which terminal/file output here treats as best-effort.
var exemptPkgs = map[string]bool{
	"fmt": true,
}

// exemptRecvs are receiver types whose methods are documented to never
// return a non-nil error (their Write/WriteString just grow memory).
var exemptRecvs = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range astq.LibFiles(pass.Fset, pass.Files) {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = stmt.Call
			case *ast.DeferStmt:
				call = stmt.Call
			}
			if call == nil || !returnsError(pass.TypesInfo, call) || exempt(pass.TypesInfo, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"call drops its error result; handle it or assign it to _ to make the decision visible")
			return true
		})
	}
	return nil, nil
}

// returnsError reports whether the call yields the universe error type as
// its only result or as the last component of its result tuple — the
// position Go convention reserves for the error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tuple, isTuple := t.(*types.Tuple); isTuple {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exempt recognizes the sanctioned error-dropping call forms.
func exempt(info *types.Info, call *ast.CallExpr) bool {
	if path, _, ok := astq.PkgCall(info, call); ok && exemptPkgs[path] {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if ok && named.Obj().Pkg() != nil {
		return exemptRecvs[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
	}
	return false
}
