// Fixture for the chanwait analyzer: the four deliberate shapes of the
// acceptance list — an unbuffered send/recv cycle between two
// goroutines, the same shape broken by a select (adaptive routing), a
// capacity-bounded ring still flagged with its VC counts, and a
// call-mediated request/response loopback — plus a WaitGroup-vs-channel
// cycle, a clean pipeline, and a clean worker-pool replica guarding the
// release-on-return rule.
package chanwait

import "sync"

// crossedPair: two goroutines each send first and receive second, on
// crossed channels. Each receive waits behind the other's send: the
// two-vertex cycle of a crossed rendezvous, the canonical CDG cycle.
func crossedPair() {
	a := make(chan int)
	b := make(chan int)
	go func() {
		a <- 1
		<-b // want `channel wait-for cycle: chanwait\.crossedPair\.b -> chanwait\.crossedPair\.a -> chanwait\.crossedPair\.b`
	}()
	go func() {
		b <- 1
		<-a // want `channel wait-for cycle: chanwait\.crossedPair\.a -> chanwait\.crossedPair\.b -> chanwait\.crossedPair\.a`
	}()
}

// selectBreaks is crossedPair with the second goroutine turned into a
// select: either arm may fire, so neither is a hold point — the escape
// path adaptive routing adds to a cyclic CDG. No diagnostic.
func selectBreaks() {
	a := make(chan int)
	b := make(chan int)
	go func() {
		a <- 1
		<-b
	}()
	go func() {
		select {
		case b <- 1:
		case <-a:
		}
	}()
}

// bufferedRing is crossedPair with one-slot buffers: capacity delays the
// deadlock by one round but cannot break the cycle — finite VCs on a
// cyclic CDG. Flagged, with each channel's capacity in the message.
func bufferedRing() {
	a := make(chan int, 1)
	b := make(chan int, 1)
	go func() {
		a <- 1
		<-b // want `finite VCs on a cyclic CDG`
	}()
	go func() {
		b <- 1
		<-a // want `finite VCs on a cyclic CDG`
	}()
}

// loopback: the cycle is only visible through calls — each turn blocks
// on one field channel and then sends on the other via a helper. The
// callee's ops fold at the call site, closing req -> resp -> req.
type loopback struct {
	req  chan int
	resp chan int
}

func newLoopback() *loopback {
	return &loopback{req: make(chan int), resp: make(chan int)}
}

func (l *loopback) sendReq()  { l.req <- 1 }
func (l *loopback) sendResp() { l.resp <- 1 }

func (l *loopback) clientTurn() {
	<-l.resp
	l.sendReq() // want `channel wait-for cycle: chanwait\.loopback\.req -> chanwait\.loopback\.resp -> chanwait\.loopback\.req`
}

func (l *loopback) serverTurn() {
	<-l.req
	l.sendResp() // want `channel wait-for cycle: chanwait\.loopback\.resp -> chanwait\.loopback\.req -> chanwait\.loopback\.resp`
}

// pipeline: a straight-line producer chain. `c2 <- <-c1` receives before
// it sends (evaluation order), so the only edge is c2 -> c1. Clean.
func pipeline() {
	c1 := make(chan int)
	c2 := make(chan int)
	go func() {
		c1 <- 1
		close(c1)
	}()
	go func() {
		c2 <- <-c1
		close(c2)
	}()
	<-c2
}

// waitBeforeSend: the main goroutine waits on the WaitGroup before
// feeding the channel the waited-on goroutine is parked on. The Done
// cannot run until the receive completes, the send cannot run until the
// Wait returns: a genuine channel/WaitGroup cycle.
func waitBeforeSend() {
	var wg sync.WaitGroup
	ch := make(chan int)
	wg.Add(1)
	go func() {
		<-ch
		wg.Done() // want `channel wait-for cycle: chanwait\.waitBeforeSend\.wg -> chanwait\.waitBeforeSend\.ch -> chanwait\.waitBeforeSend\.wg`
	}()
	wg.Wait()
	ch <- 1 // want `channel wait-for cycle: chanwait\.waitBeforeSend\.ch -> chanwait\.waitBeforeSend\.wg -> chanwait\.waitBeforeSend\.ch`
}

// pool replicates the simulator's shard-pool barrier: a worker ranging
// over a job channel and answering on a buffered done channel, a
// dispatcher doing send-then-receive, and a shutdown doing
// close-then-Wait. The locals are published into fields, so every
// context meets on the field identities. Acyclic: done waits behind
// jobs, the WaitGroup behind both — no edge ever points back.
type pool struct {
	jobs chan func() error
	done chan error
	wg   sync.WaitGroup
}

func newPool() *pool {
	p := &pool{}
	job := make(chan func() error)
	done := make(chan error, 1)
	p.jobs = job
	p.done = done
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for fn := range job {
			done <- fn()
		}
	}()
	return p
}

func (p *pool) dispatch(fn func() error) error {
	p.jobs <- fn
	return <-p.done
}

func (p *pool) stop() {
	close(p.jobs)
	p.wg.Wait()
}

// twice dispatches back to back: the second send must not pair against
// the first receive — a call that returned has completed its rendezvous
// (release-on-return) — or the clean barrier round-trip would read as a
// jobs -> done -> jobs cycle.
func twice(p *pool) {
	_ = p.dispatch(func() error { return nil })
	_ = p.dispatch(func() error { return nil })
}
