package chanwait_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers/chanwait"
)

func TestChanwaitFixture(t *testing.T) {
	findings := analysistest.Run(t, chanwait.Analyzer, analysistest.TestData(t), "chanwait")
	// Regression guard: an analyzer that silently stops reporting would
	// otherwise pass a fixture with no want comments left. The fixture
	// holds four deliberate cycles of two edges each.
	if len(findings) < 8 {
		t.Fatalf("chanwait reported %d findings on the bad fixture, want >= 8", len(findings))
	}
}
