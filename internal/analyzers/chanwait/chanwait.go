// Package chanwait builds the channel wait-for graph of a package — the
// Dally–Seitz channel-dependency argument applied to the repository's
// own goroutines and channels — and proves it acyclic, reporting minimal
// cycles as counterexamples exactly as fabricver does for a fabric CDG.
//
// # The model
//
// Vertices are static channel and WaitGroup identities (conc.BaseObj: a
// struct field abstracts every instance; a local published into a field
// via conc.FieldAlias takes the field's identity — the shardPool shape).
// Each channel carries its make-site buffer capacity, the "VC count" of
// the analogy: an unbuffered channel is a VC-free link, a capacity-k
// channel a link with k virtual channels' worth of slack.
//
// An edge B -> A records a program-order dependency: some context may
// execute a blocking operation on A and later an operation on B, so B's
// rendezvous cannot complete while that context is parked on A. A cycle
// means every rendezvous in it can be waiting on another — the
// hold-and-wait loop of a cyclic CDG — and buffering only delays it
// (finite VCs never break a cyclic CDG; see the buffered fixture).
//
// # What generates edges, precisely
//
//   - Blocking ops (Op.Blocking, per conc.OpsIn): send, receive, range
//     over a channel, WaitGroup.Wait. They enter the context's
//     "pending earlier" set AND pair as the later side against it.
//   - Non-blocking counterpart ops (close, Done, select-with-default
//     comms) and select arms pair only as the later side: they provide a
//     rendezvous others may wait on but park nobody here. A multi-arm
//     select without default is the adaptive-routing escape of the
//     analogy — any arm may fire, so no single arm is a hold point and
//     the select as a whole names no one resource (its arms do).
//   - Ordering is forward-only within one loop iteration: back edges of
//     the CFG are cut before the dataflow, so a worker loop's
//     cross-iteration feedback (send done, then receive the NEXT job)
//     does not fold successive barrier rounds onto one vertex pair and
//     manufacture a cycle. Pipelined rounds are governed by the
//     goleak/chanclose obligations, not this graph.
//   - Intra-package calls fold the callee's transitive field/package
//     -level op set at the call site as later-side ops only: a call that
//     returned has completed its rendezvous (release-on-return, the
//     analogue of lockorder's held-set not growing across a call).
//     Ordering constraints therefore do not propagate out of completed
//     calls; each function's own context contributes its internal order.
//   - Deferred ops run at function exit: they pair as the later side
//     against every blocking op of the function (defers are registered
//     before the ops they outwait in this repo's idiom).
//   - go statements contribute nothing to the spawner (spawning never
//     blocks); the spawned literal or declaration is its own context.
//     Argument expressions of a go call are not scanned.
//   - Self-pairs (two ops on one identity) are dropped: with fields
//     abstracting instances and loops abstracting iterations they are
//     artifacts, unlike lockorder's self-edge (recursive Lock), which is
//     a real deadlock.
//
// Unknown callees (interface methods, function-typed values, other
// packages) contribute nothing — the conservative-quiet choice shared
// with lockorder; the cross-package picture is reassembled by the code
// certificate, which merges every package's edges and re-proves
// acyclicity globally. Spawned named functions are analyzed as their own
// contexts with their parameter identities; cross-context unification
// happens through fields and captured locals (the repo idiom), not
// through argument passing.
package chanwait

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analyzers/astq"
	"repro/internal/analyzers/conc"
	"repro/internal/graph"
)

// Resource is one wait-for-graph vertex: a channel or WaitGroup
// identity. Cap is the make-site buffer capacity for channels (0
// unbuffered, -1 unknown) and -1 for WaitGroups.
type Resource struct {
	Name string
	Kind string // "chan" or "waitgroup"
	Cap  int
}

// CtxOp is one operation of a context, for the certificate's
// communication-topology section.
type CtxOp struct {
	Op  string
	On  string
	Pos token.Position
}

// Context is one function (or literal) and its synchronization
// operations in source order — a goroutine-topology record: which
// contexts touch which channels, the "spawn sites as nodes, channels as
// edges" view of the communication graph.
type Context struct {
	Func string
	Ops  []CtxOp
}

// Edge is one wait-for dependency: an op on From cannot complete while
// the same context is parked on To. Pos is the later (From-side) op.
type Edge struct {
	From, To string
	Op       string // kind of the later op
	Pos      token.Position
}

// Result is the per-package slice of the global wait-for graph, exported
// for the code certificate: sorted resources, contexts and edges.
type Result struct {
	Resources []Resource
	Contexts  []Context
	Edges     []Edge
}

var Analyzer = &analysis.Analyzer{
	Name: "chanwait",
	Doc: "prove the channel/WaitGroup wait-for graph acyclic, like a channel-dependency graph; " +
		"an edge B->A means a context may block on A before completing a rendezvous on B, and " +
		"any cycle admits deadlock — report it with a minimal counterexample cycle and each " +
		"channel's buffer capacity as its VC count",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !conc.InScope(pass.Pkg.Path()) {
		return Result{}, nil
	}
	files := astq.LibFiles(pass.Fset, pass.Files)
	g := callgraph.Build(pass.TypesInfo, files)

	a := &scanner{
		pass:  pass,
		g:     g,
		caps:  conc.ChanCaps(pass.TypesInfo, files),
		canon: map[types.Object]types.Object{},
		name:  map[types.Object]string{},
		kind:  map[types.Object]string{},
		capOf: map[types.Object]int{},
		trans: map[*callgraph.Func]map[types.Object]string{},
		edges: map[[2]types.Object]edgeInfo{},
	}

	// Pass 1: raw ops per function, in source order, so aliasing and
	// naming see every operand before any edge is generated.
	a.collectOps()
	a.resolveAliases()
	a.collectTransitive()

	// Pass 2: the forward-only ordered-pair dataflow per function.
	for _, f := range g.Funcs {
		a.scanFunc(f)
	}

	res := a.result()
	a.reportCycles(res)
	return res, nil
}

type edgeInfo struct {
	pos  token.Pos
	kind string
}

type funcOps struct {
	f   *callgraph.Func
	si  conc.SelectInfo
	ops []conc.Op // raw (pre-canon) ops, source order, defers excluded
}

type scanner struct {
	pass *analysis.Pass
	g    *callgraph.Graph
	caps map[types.Object]int

	perFunc []funcOps
	// rawObjs is every distinct op operand in first-seen source order —
	// the deterministic iteration base for aliasing and cap folding.
	rawObjs []types.Object
	// canon maps each operand to its vertex identity (field alias when
	// published, itself otherwise).
	canon map[types.Object]types.Object
	name  map[types.Object]string // canon obj -> display name
	kind  map[types.Object]string // canon obj -> "chan" / "waitgroup"
	capOf map[types.Object]int    // canon obj -> buffer capacity
	// trans maps each function to the field/package-level resources it
	// (or any statically reachable intra-package callee) may operate on,
	// with the first op kind seen — folded at call sites as later-only.
	trans map[*callgraph.Func]map[types.Object]string
	edges map[[2]types.Object]edgeInfo
}

// inDomain reports whether an op belongs to the wait-for graph: channel
// and WaitGroup ops with a resolved operand. Mutexes are lockorder's
// domain; sleeps and whole selects name no single resource.
func inDomain(op conc.Op) bool {
	switch op.Kind {
	case "send", "recv", "range", "close", "wait", "done":
		return op.Obj != nil
	}
	return false
}

// collectOps gathers every function's in-domain ops (source order,
// nested literals are their own functions).
func (a *scanner) collectOps() {
	info := a.pass.TypesInfo
	seen := map[types.Object]bool{}
	for _, f := range a.g.Funcs {
		if f.Body == nil {
			continue
		}
		fo := funcOps{f: f, si: conc.CollectSelectInfo(f.Body)}
		for _, op := range conc.OpsIn(info, f.Body, fo.si) {
			if !inDomain(op) {
				continue
			}
			fo.ops = append(fo.ops, op)
			if !seen[op.Obj] {
				seen[op.Obj] = true
				a.rawObjs = append(a.rawObjs, op.Obj)
			}
		}
		a.perFunc = append(a.perFunc, fo)
	}
}

// resolveAliases canonicalizes operands (local -> published field),
// names each vertex, classifies its kind, and folds make-site caps onto
// the canonical identity.
func (a *scanner) resolveAliases() {
	info := a.pass.TypesInfo
	for _, obj := range a.rawObjs {
		c := obj
		if !conc.IsField(obj) && !pkgScoped(obj) {
			for _, fo := range a.perFunc {
				if fo.f.Body == nil {
					continue
				}
				if alias := conc.FieldAlias(info, fo.f.Body, obj); alias != nil {
					c = alias
					break
				}
			}
		}
		a.canon[obj] = c
		if _, ok := a.name[c]; !ok {
			a.name[c] = a.vertexName(c)
			a.kind[c] = resourceKind(c)
			a.capOf[c] = -1
		}
		if cp, ok := a.caps[obj]; ok && a.capOf[c] == -1 {
			a.capOf[c] = cp
		}
		if cp, ok := a.caps[c]; ok && a.capOf[c] == -1 {
			a.capOf[c] = cp
		}
	}
}

func pkgScoped(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func resourceKind(obj types.Object) string {
	if conc.IsWaitGroup(obj.Type()) {
		return "waitgroup"
	}
	return "chan"
}

// vertexName renders a package-qualified stable name. Locals are named
// by their DECLARING function (found by position), not the using
// context, so a captured local keeps one identity across the declaring
// function and every literal spawned from it.
func (a *scanner) vertexName(obj types.Object) string {
	if conc.IsField(obj) || pkgScoped(obj) {
		return conc.ObjName(a.pass.Pkg, "?", obj)
	}
	for _, f := range a.g.Funcs {
		if f.Decl == nil {
			continue
		}
		if f.Decl.Pos() <= obj.Pos() && obj.Pos() <= f.Decl.End() {
			return a.pass.Pkg.Path() + "." + f.Name + "." + obj.Name()
		}
	}
	return a.pass.Pkg.Path() + ".?." + obj.Name()
}

// collectTransitive computes each function's field/package-level op set
// and closes it over the call graph (lockorder's fixpoint shape).
func (a *scanner) collectTransitive() {
	for _, fo := range a.perFunc {
		set := map[types.Object]string{}
		for _, op := range fo.ops {
			c := a.canon[op.Obj]
			if !conc.IsField(c) && !pkgScoped(c) {
				continue // locals do not survive the call boundary
			}
			if _, ok := set[c]; !ok {
				set[c] = op.Kind
			}
		}
		a.trans[fo.f] = set
	}
	for changed := true; changed; {
		changed = false
		for _, f := range a.g.Funcs {
			for _, callee := range f.Callees {
				for obj, kind := range a.trans[callee] {
					if _, ok := a.trans[f][obj]; !ok {
						if a.trans[f] == nil {
							a.trans[f] = map[types.Object]string{}
						}
						a.trans[f][obj] = kind
						changed = true
					}
				}
			}
		}
	}
}

// scanFunc runs the forward-only ordered-pair dataflow over one
// function: cut CFG back edges, process blocks in topological order
// propagating the union of "pending earlier blocking resources" along
// forward paths, and record an edge for every (later op, earlier
// resource) pair.
func (a *scanner) scanFunc(f *callgraph.Func) {
	if f.Body == nil {
		return
	}
	var fo *funcOps
	for i := range a.perFunc {
		if a.perFunc[i].f == f {
			fo = &a.perFunc[i]
			break
		}
	}
	hasOps := fo != nil && len(fo.ops) > 0
	hasCalls := false
	for _, callee := range f.Callees {
		if len(a.trans[callee]) > 0 {
			hasCalls = true
			break
		}
	}
	if !hasOps && !hasCalls {
		return
	}
	si := conc.SelectInfo{}
	if fo != nil {
		si = fo.si
	} else {
		si = conc.CollectSelectInfo(f.Body)
	}

	c := cfg.New(f.Body)
	order, forward := forwardOrder(c)

	in := make([]map[types.Object]bool, len(c.Blocks))
	for i := range in {
		in[i] = map[types.Object]bool{}
	}
	// funcBlocking accumulates every direct blocking resource of the
	// function, for pairing deferred ops at exit.
	funcBlocking := map[types.Object]bool{}

	for _, blk := range order {
		running := copySet(in[blk.Index])
		for _, n := range blk.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue // exit-time; handled below
			}
			a.applyNode(n, si, running, funcBlocking)
		}
		for _, succ := range blk.Succs {
			if !forward[[2]int{blk.Index, succ.Index}] {
				continue
			}
			for obj := range running {
				in[succ.Index][obj] = true
			}
		}
	}

	// Deferred ops pair as the later side against every blocking op of
	// the function (they run at exit, after whatever the function parked
	// on). Calls inside a defer fold their transitive set the same way.
	info := a.pass.TypesInfo
	for _, d := range c.Defers {
		for _, op := range conc.OpsIn(info, d, si) {
			if !inDomain(op) {
				continue
			}
			a.pairLater(a.canon[op.Obj], op.Kind, op.Pos, funcBlocking)
		}
		if callee := a.g.StaticCallee(info, d.Call); callee != nil {
			for obj, kind := range a.trans[callee] {
				a.pairLater(obj, kind, d.Pos(), funcBlocking)
			}
		}
	}
}

// applyNode processes one CFG node: direct ops in evaluation order (each
// pairs as later against the running set, blocking ones then join it)
// interleaved with statically resolved calls folding the callee's
// transitive set as later-only (release-on-return). A send node's calls
// all sit in its operands and so run before the send commits — calls
// fold first there; every other node folds calls after its direct ops
// (`helper(<-ch)` receives before calling). Finer intra-statement
// interleavings are deliberately approximated: each folded set is
// later-only, so an imprecise position can at most miss an ordering, and
// the repo idiom keeps sends and calls in separate statements.
func (a *scanner) applyNode(n ast.Node, si conc.SelectInfo, running, funcBlocking map[types.Object]bool) {
	_, isSend := n.(*ast.SendStmt)
	if isSend {
		a.foldCalls(n, running)
	}
	info := a.pass.TypesInfo
	for _, op := range conc.OpsIn(info, n, si) {
		if !inDomain(op) {
			continue
		}
		c := a.canon[op.Obj]
		a.pairLater(c, op.Kind, op.Pos, running)
		if op.Blocking {
			running[c] = true
			funcBlocking[c] = true
		}
	}
	if !isSend {
		a.foldCalls(n, running)
	}
}

// foldCalls folds the transitive field/package-level op set of every
// statically resolved call in the node as later-side ops.
func (a *scanner) foldCalls(n ast.Node, running map[types.Object]bool) {
	info := a.pass.TypesInfo
	conc.Shallow(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.GoStmt); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if callee := a.g.StaticCallee(info, call); callee != nil {
				for obj, kind := range a.trans[callee] {
					a.pairLater(obj, kind, call.Pos(), running)
				}
			}
		}
		return true
	})
}

// pairLater records later -> earlier edges for one later-side op against
// a set of pending earlier resources, keeping the first site per pair
// and dropping self-pairs.
func (a *scanner) pairLater(later types.Object, kind string, pos token.Pos, earlier map[types.Object]bool) {
	for e := range earlier {
		if e == later {
			continue
		}
		key := [2]types.Object{later, e}
		if _, ok := a.edges[key]; !ok {
			a.edges[key] = edgeInfo{pos: pos, kind: kind}
		}
	}
}

// forwardOrder returns the blocks in a topological order of the CFG with
// back edges removed (identified by DFS from the entry; unreachable
// blocks come last, in index order) plus the set of forward edges.
func forwardOrder(c *cfg.CFG) ([]*cfg.Block, map[[2]int]bool) {
	const (
		white = iota
		grey
		black
	)
	color := make([]int, len(c.Blocks))
	forward := map[[2]int]bool{}
	var post []*cfg.Block
	var visit func(b *cfg.Block)
	visit = func(b *cfg.Block) {
		color[b.Index] = grey
		for _, s := range b.Succs {
			if color[s.Index] == grey {
				continue // back edge: cut
			}
			forward[[2]int{b.Index, s.Index}] = true
			if color[s.Index] == white {
				visit(s)
			}
		}
		color[b.Index] = black
		post = append(post, b)
	}
	visit(c.Entry)
	for _, b := range c.Blocks {
		if color[b.Index] == white {
			visit(b)
		}
	}
	order := make([]*cfg.Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	return order, forward
}

// result renders the sorted resource, context and edge lists.
func (a *scanner) result() Result {
	res := Result{}
	for _, c := range a.canon {
		name := a.name[c]
		found := false
		for _, r := range res.Resources {
			if r.Name == name {
				found = true
				break
			}
		}
		if !found {
			res.Resources = append(res.Resources, Resource{Name: name, Kind: a.kind[c], Cap: a.capOf[c]})
		}
	}
	sort.Slice(res.Resources, func(i, j int) bool { return res.Resources[i].Name < res.Resources[j].Name })

	for _, fo := range a.perFunc {
		if len(fo.ops) == 0 {
			continue
		}
		ctx := Context{Func: a.pass.Pkg.Path() + "." + fo.f.Name}
		for _, op := range fo.ops {
			ctx.Ops = append(ctx.Ops, CtxOp{
				Op: op.Kind, On: a.name[a.canon[op.Obj]],
				Pos: a.pass.Fset.Position(op.Pos),
			})
		}
		res.Contexts = append(res.Contexts, ctx)
	}
	sort.Slice(res.Contexts, func(i, j int) bool { return res.Contexts[i].Func < res.Contexts[j].Func })

	for key, ei := range a.edges {
		res.Edges = append(res.Edges, Edge{
			From: a.name[key[0]], To: a.name[key[1]],
			Op: ei.kind, Pos: a.pass.Fset.Position(ei.pos),
		})
	}
	sort.Slice(res.Edges, func(i, j int) bool {
		x, y := res.Edges[i], res.Edges[j]
		if x.From != y.From {
			return x.From < y.From
		}
		if x.To != y.To {
			return x.To < y.To
		}
		return x.Pos.Offset < y.Pos.Offset
	})
	return res
}

// reportCycles proves the package graph acyclic or reports every edge
// participating in a cycle with a minimal counterexample through it,
// annotated with the buffer capacities ("VC counts") of the cycle's
// channels.
func (a *scanner) reportCycles(res Result) {
	if len(res.Edges) == 0 {
		return
	}
	names := make([]string, 0, len(res.Resources))
	capByName := map[string]int{}
	for _, r := range res.Resources {
		names = append(names, r.Name)
		capByName[r.Name] = r.Cap
	}
	dg, index := BuildGraph(names, res.Edges)
	if _, cyclic := dg.ShortestCycle(); !cyclic {
		return
	}
	for _, e := range res.Edges {
		u, v := index[e.From], index[e.To]
		cycle, ok := dg.CycleThrough(u, v)
		if !ok {
			continue
		}
		cycleNames := make([]string, 0, len(cycle)+1)
		var caps []string
		for _, w := range cycle {
			cycleNames = append(cycleNames, names[w])
			if c := capByName[names[w]]; c >= 1 {
				caps = append(caps, fmt.Sprintf("%s=%d", names[w], c))
			}
		}
		cycleNames = append(cycleNames, names[cycle[0]])
		capNote := ""
		if len(caps) > 0 {
			capNote = fmt.Sprintf("; buffer capacities (%s) delay but cannot break it — finite VCs on a cyclic CDG",
				strings.Join(caps, ", "))
		}
		a.pass.Reportf(a.findEdgePos(e),
			"channel wait-for cycle: %s — %s on %s while %s's rendezvous is pending admits deadlock, exactly as a cyclic channel-dependency graph does%s",
			strings.Join(cycleNames, " -> "), e.Op, e.From, e.To, capNote)
	}
}

func (a *scanner) findEdgePos(e Edge) token.Pos {
	for key, ei := range a.edges {
		if a.name[key[0]] == e.From && a.name[key[1]] == e.To {
			return ei.pos
		}
	}
	return token.NoPos
}

// BuildGraph assembles a graph.Digraph over the resource vertices;
// shared with the code certificate, which merges edges from every
// package and re-runs the same acyclicity proof globally.
func BuildGraph(resources []string, edges []Edge) (*graph.Digraph, map[string]int) {
	index := make(map[string]int, len(resources))
	for i, name := range resources {
		index[name] = i
	}
	dg := graph.NewDigraph(len(resources))
	seen := map[[2]int]bool{}
	for _, e := range edges {
		u, okU := index[e.From]
		v, okV := index[e.To]
		if !okU || !okV || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		dg.AddEdge(u, v)
	}
	return dg, index
}

func copySet(s map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
