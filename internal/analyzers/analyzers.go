// Package analyzers registers the simlint suite: the static checks that
// enforce the repository's determinism and seeding contracts (see the
// "Determinism contract" section of README.md). cmd/simlint runs them as
// a multichecker and as a `go vet -vettool`; each analyzer also has
// analysistest coverage over deliberately-bad fixtures.
package analyzers

import (
	"repro/internal/analysis"
	"repro/internal/analyzers/blockcheck"
	"repro/internal/analyzers/chanclose"
	"repro/internal/analyzers/chanwait"
	"repro/internal/analyzers/goleak"
	"repro/internal/analyzers/lockorder"
	"repro/internal/analyzers/maporder"
	"repro/internal/analyzers/nondet"
	"repro/internal/analyzers/printfloat"
	"repro/internal/analyzers/reterr"
	"repro/internal/analyzers/seedflow"
)

// All returns the full suite in stable order: the determinism-contract
// analyzers of PR 2 plus the concurrency-deadlock analyzers backing the
// code certificate (lockorder, goleak, chanclose, chanwait, blockcheck).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		blockcheck.Analyzer,
		chanclose.Analyzer,
		chanwait.Analyzer,
		goleak.Analyzer,
		lockorder.Analyzer,
		maporder.Analyzer,
		nondet.Analyzer,
		printfloat.Analyzer,
		reterr.Analyzer,
		seedflow.Analyzer,
	}
}

// Concurrency returns just the deadlock-certificate analyzers, the suite
// `simlint -certify` runs over internal/... .
func Concurrency() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		blockcheck.Analyzer,
		chanclose.Analyzer,
		chanwait.Analyzer,
		goleak.Analyzer,
		lockorder.Analyzer,
	}
}

// ByName returns the named analyzers, or All() when names is empty.
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	if len(names) == 0 {
		return All(), true
	}
	index := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
