// Package astq holds the small AST/type query helpers shared by the
// simlint analyzers.
package astq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PkgCall resolves a call to a package-level function accessed through a
// package selector (pkg.Func(...)), returning the imported package path
// and function name. It follows import aliases via the type information,
// so `import mrand "math/rand"` still resolves to math/rand.
func PkgCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// LibFiles filters out _test.go files: the determinism contract governs
// library and command code; tests are the dynamic half of the contract
// and may use wall clocks and ad-hoc seeds freely.
func LibFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	var out []*ast.File
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// InScope reports whether a package path is subject to a check limited to
// the given repo packages. Packages outside the repo module (in practice:
// the analyzers' testdata fixtures) are always in scope so fixtures can
// exercise every diagnostic.
func InScope(pkgPath string, repoScope map[string]bool) bool {
	if strings.HasPrefix(pkgPath, "repro/") {
		return repoScope[pkgPath]
	}
	return true
}

// MentionsObject reports whether the expression subtree uses the object.
func MentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// AssignedObject returns the object assigned by the expression when it is
// a plain identifier (skipping the blank identifier), else nil.
func AssignedObject(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return info.ObjectOf(id)
}
