// Package conc holds the shared type- and AST-query helpers of the
// concurrency analyzers (lockorder, goleak, chanclose): resolving sync
// primitive calls to the lock or WaitGroup object they act on, tracing a
// channel or WaitGroup expression to its base object (the static
// identity all three analyzers abstract over: one field = one lock = one
// channel, across every instance of the type), and shallow AST walks
// that stop at nested function literals so a query about one function
// never reads another function's body.
package conc

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

// InScope reports whether a package is covered by the concurrency
// contract: everything under internal/ (the proof engine itself), plus
// any package outside the repo module so the analyzers' testdata fixtures
// can exercise every diagnostic.
func InScope(pkgPath string) bool {
	if pkgPath == "repro" || hasPrefix(pkgPath, "repro/") {
		return hasPrefix(pkgPath, "repro/internal/")
	}
	return true
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// BaseObj resolves an expression to the object that identifies the
// channel / mutex / WaitGroup it denotes: parens, derefs and index
// expressions are stripped; a selector chain resolves to the final field.
// All instances of a type share the field object, so fields abstract to
// one static identity — exactly how the CDG abstracts all packets in a
// channel to one vertex.
func BaseObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.ParenExpr:
		return BaseObj(info, e.X)
	case *ast.StarExpr:
		return BaseObj(info, e.X)
	case *ast.IndexExpr:
		return BaseObj(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return BaseObj(info, e.X)
		}
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// named reports whether t (after pointer stripping) is the named type
// path.name.
func named(t types.Type, path, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// IsWaitGroup reports whether t is (a pointer to) sync.WaitGroup.
func IsWaitGroup(t types.Type) bool { return named(t, "sync", "WaitGroup") }

// IsMutex reports whether t is (a pointer to) sync.Mutex or sync.RWMutex.
func IsMutex(t types.Type) bool {
	return named(t, "sync", "Mutex") || named(t, "sync", "RWMutex")
}

// SyncCall matches a method call X.m(...) whose receiver satisfies
// isRecv, returning the receiver's base object and the method name.
func SyncCall(info *types.Info, n ast.Node, isRecv func(types.Type) bool) (types.Object, string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isRecv(tv.Type) {
		return nil, "", false
	}
	return BaseObj(info, sel.X), sel.Sel.Name, true
}

// WaitGroupCall matches X.Add/Done/Wait on a sync.WaitGroup.
func WaitGroupCall(info *types.Info, n ast.Node) (types.Object, string, bool) {
	obj, m, ok := SyncCall(info, n, IsWaitGroup)
	if !ok || (m != "Add" && m != "Done" && m != "Wait") {
		return nil, "", false
	}
	return obj, m, true
}

// LockCall matches X.Lock/Unlock/RLock/RUnlock on a sync.Mutex or
// sync.RWMutex. TryLock/TryRLock never block, so they are deliberately
// not matched: a try-acquire cannot close a wait cycle.
func LockCall(info *types.Info, n ast.Node) (types.Object, string, bool) {
	obj, m, ok := SyncCall(info, n, IsMutex)
	if !ok {
		return nil, "", false
	}
	switch m {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return obj, m, true
	}
	return nil, "", false
}

// BuiltinCall matches a call of the named builtin (close, make, ...),
// rejecting shadowed identifiers: the identifier must resolve to a
// *types.Builtin object.
func BuiltinCall(info *types.Info, n ast.Node, name string) (*ast.CallExpr, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return nil, false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return nil, false
	}
	return call, true
}

// Shallow walks the subtree of n but does not descend into nested
// function literals: queries about one function's behavior must not see
// statements that only run when some other goroutine or caller invokes
// the literal. When n itself is a *cfg.RangeHead only the range operand
// is walked (its body lives in other CFG blocks).
func Shallow(n ast.Node, f func(ast.Node) bool) {
	if rh, ok := n.(*cfg.RangeHead); ok {
		n = rh.Range.X
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return f(x)
	})
}

// ContainsShallow reports whether some node of the shallow subtree
// matches pred.
func ContainsShallow(n ast.Node, pred func(ast.Node) bool) bool {
	found := false
	Shallow(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if pred(x) {
			found = true
		}
		return !found
	})
	return found
}

// JoinsOn reports whether the node (shallowly) receives from, ranges
// over, or closes the channel identified by obj. This is the "consumes
// the spawned goroutine's signal" predicate of goleak and chanclose.
func JoinsOn(info *types.Info, n ast.Node, obj types.Object) bool {
	if rh, ok := n.(*cfg.RangeHead); ok {
		return BaseObj(info, rh.Range.X) == obj
	}
	return ContainsShallow(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				return BaseObj(info, x.X) == obj
			}
		case *ast.CallExpr:
			if call, ok := BuiltinCall(info, x, "close"); ok && len(call.Args) == 1 {
				return BaseObj(info, call.Args[0]) == obj
			}
		case *ast.RangeStmt:
			return BaseObj(info, x.X) == obj
		}
		return false
	})
}

// RecvsFrom reports whether the node (shallowly) receives from or ranges
// over the channel obj — the positive join signal of goleak/chanclose; a
// close does not count (closing a channel does not consume a pending
// send).
func RecvsFrom(info *types.Info, n ast.Node, obj types.Object) bool {
	if rh, ok := n.(*cfg.RangeHead); ok {
		return BaseObj(info, rh.Range.X) == obj
	}
	return ContainsShallow(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				return BaseObj(info, x.X) == obj
			}
		case *ast.RangeStmt:
			return BaseObj(info, x.X) == obj
		}
		return false
	})
}

// Closes reports whether the node (shallowly) closes the channel obj.
func Closes(info *types.Info, n ast.Node, obj types.Object) bool {
	return ContainsShallow(n, func(x ast.Node) bool {
		call, ok := BuiltinCall(info, x, "close")
		if !ok || len(call.Args) != 1 {
			return false
		}
		return BaseObj(info, call.Args[0]) == obj
	})
}

// WaitsOn reports whether the node (shallowly) calls Wait on the
// WaitGroup identified by obj, directly or inside a defer.
func WaitsOn(info *types.Info, n ast.Node, obj types.Object) bool {
	return ContainsShallow(n, func(x ast.Node) bool {
		o, m, ok := WaitGroupCall(info, x)
		return ok && m == "Wait" && o == obj
	})
}

// FieldAlias returns the field a local object is published through when
// the function stores it into a struct field — `x.f = obj` or
// `x.f = append(x.f, obj)` — so an obligation on the local can transfer
// to the field (the shardPool pattern: worker channels built locally,
// appended to p.jobs, closed by (*shardPool).close).
func FieldAlias(info *types.Info, body ast.Node, obj types.Object) types.Object {
	var alias types.Object
	Shallow(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || alias != nil {
			return alias == nil
		}
		for i, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			field := info.ObjectOf(sel.Sel)
			if field == nil || i >= len(as.Rhs) && len(as.Rhs) != 1 {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if mentions(info, rhs, obj) {
				alias = field
				return false
			}
		}
		return true
	})
	return alias
}

func mentions(info *types.Info, n ast.Node, obj types.Object) bool {
	return ContainsShallow(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		return ok && info.ObjectOf(id) == obj
	})
}

// IsField reports whether obj is a struct field.
func IsField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}

// ObjName renders a stable, package-qualified display name for a lock /
// channel / WaitGroup identity: fields as pkgpath.Type.field (resolved
// through the field's owning struct when it is reachable from a named
// type of the same package), package-level vars as pkgpath.var, locals as
// funcName.var.
func ObjName(pkg *types.Package, funcName string, obj types.Object) string {
	if obj == nil {
		return "?"
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		owner := fieldOwner(pkg, v)
		pkgPath := ""
		if v.Pkg() != nil {
			pkgPath = v.Pkg().Path() + "."
		}
		if owner != "" {
			return fmt.Sprintf("%s%s.%s", pkgPath, owner, v.Name())
		}
		return pkgPath + v.Name()
	}
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return funcName + "." + obj.Name()
}

// fieldOwner scans the package's named struct types for the one declaring
// the field, returning its type name ("" when not found — e.g. a field of
// an anonymous struct).
func fieldOwner(pkg *types.Package, field *types.Var) string {
	scope := pkg.Scope()
	if field.Pkg() != nil && field.Pkg() != pkg {
		scope = field.Pkg().Scope()
	}
	if scope == nil {
		return ""
	}
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn.Name()
			}
		}
	}
	return ""
}

// SpawnSites collects the go statements of each function-like node,
// keyed by the directly enclosing function, preserving source order.
func SpawnSites(files []*ast.File) map[ast.Node][]*ast.GoStmt {
	sites := map[ast.Node][]*ast.GoStmt{}
	analysis.WithStack(files, func(n ast.Node, stack []ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			encl := analysis.EnclosingFunc(stack[:len(stack)-1])
			sites[encl] = append(sites[encl], g)
		}
		return true
	})
	return sites
}

// ConstCap returns the constant capacity of a make(chan T, n) call, or
// -1 when the expression is not such a call or the capacity is not a
// compile-time constant.
func ConstCap(info *types.Info, e ast.Expr) int {
	call, ok := BuiltinCall(info, ast.Unparen(e), "make")
	if !ok || len(call.Args) < 2 {
		return -1
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return -1
	}
	if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && c >= 0 {
		return int(c)
	}
	return -1
}

// SpawnTarget resolves the function body a go statement runs — a literal's
// body or the declaration body of a statically resolved callee — together
// with a parameter-to-argument mapping: an obligation found on a parameter
// of the spawned function (`go f(&wg)` with Done on f's parameter) is the
// caller's obligation on the argument object. Objects that are not
// parameters map to themselves. ok is false when the spawned callee cannot
// be resolved statically (interface method, function-typed variable) —
// the loud direction for goleak, since an unresolvable spawn is an
// unverifiable join.
func SpawnTarget(info *types.Info, g *callgraph.Graph, gs *ast.GoStmt) (*ast.BlockStmt, func(types.Object) types.Object, bool) {
	var body *ast.BlockStmt
	var fields []*ast.Field
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
		fields = lit.Type.Params.List
	} else if callee := g.StaticCallee(info, gs.Call); callee != nil && callee.Decl != nil && callee.Body != nil {
		body = callee.Body
		fields = callee.Decl.Type.Params.List
	} else {
		return nil, nil, false
	}
	var params []types.Object
	for _, f := range fields {
		for _, name := range f.Names {
			params = append(params, info.ObjectOf(name))
		}
	}
	args := gs.Call.Args
	mapParam := func(obj types.Object) types.Object {
		for i, p := range params {
			if p != nil && p == obj {
				if i < len(args) {
					return BaseObj(info, args[i])
				}
				return nil // variadic / mismatched: unresolvable
			}
		}
		return obj
	}
	return body, mapParam, true
}

// Op is one synchronization operation found by OpsIn — the shared
// vocabulary of the chanwait and blockcheck analyzers. Kind is one of
// "send", "recv", "range", "wait" (WaitGroup.Wait), "close", "done"
// (WaitGroup.Done), "select" (a whole multi-arm select with no default),
// "lock" (Mutex Lock/RLock) or "sleep" (time.Sleep). Obj identifies the
// channel / WaitGroup / mutex operated on (nil for "select", "sleep",
// and operands with no static base object).
//
// Blocking marks ops that can suspend the executing goroutine right
// here: sends, receives, ranges, Waits, multi-arm selects, locks and
// sleeps — except comm operations inside a select, where the select
// itself carries the blocking (an arm is one alternative, the CDG
// analogue of an adaptive route: any arm may fire, so no single arm is a
// hold-and-wait point) and a select with a default never blocks at all.
// Non-blocking ops (close, Done, select-exempt comms) still matter to
// chanwait as the providing side of a rendezvous.
type Op struct {
	Kind     string
	Obj      types.Object
	Pos      token.Pos
	Blocking bool
}

// SelectInfo classifies the comm statements of every select in the
// shallow subtree: Exempt holds comms of selects with a default clause
// (never block), Arm holds comms of multi-arm selects without a default
// (alternatives, not individual wait points). A single-arm select
// without default is equivalent to its bare operation and marks nothing.
type SelectInfo struct {
	Exempt map[ast.Stmt]bool
	Arm    map[ast.Stmt]bool
}

// CollectSelectInfo builds the SelectInfo of one function body (shallow:
// nested literals classify their own selects).
func CollectSelectInfo(body ast.Node) SelectInfo {
	si := SelectInfo{Exempt: map[ast.Stmt]bool{}, Arm: map[ast.Stmt]bool{}}
	if body == nil {
		return si
	}
	Shallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		var comms []ast.Stmt
		for _, cs := range sel.Body.List {
			cc := cs.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
				continue
			}
			comms = append(comms, cc.Comm)
		}
		for _, comm := range comms {
			switch {
			case hasDefault:
				si.Exempt[comm] = true
			case len(comms) > 1:
				si.Arm[comm] = true
			}
		}
		return true
	})
	return si
}

// OpsIn collects the synchronization operations of the shallow subtree
// of n, in evaluation order: source order, except that a send's operand
// ops precede the send op itself (`c2 <- <-c1` receives before it
// sends). go statements are skipped entirely: spawning never blocks the
// spawner, and the spawned body is another function's ops (argument
// expressions of a go call are rare enough to ignore, documented in the
// chanwait package comment). Defer statements are NOT treated specially
// here — callers that need exit-time semantics (chanwait) collect defers
// separately.
func OpsIn(info *types.Info, n ast.Node, si SelectInfo) []Op {
	var ops []Op
	if n == nil {
		return ops
	}
	if rh, ok := n.(*cfg.RangeHead); ok {
		if chanRange(info, rh.Range) {
			ops = append(ops, Op{Kind: "range", Obj: BaseObj(info, rh.Range.X), Pos: rh.Range.Pos(), Blocking: true})
		}
		n = rh.Range.X // fall through: the operand may hold nested ops
	}
	Shallow(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			blocking := true
			nComms := 0
			for _, cs := range x.Body.List {
				if cs.(*ast.CommClause).Comm == nil {
					blocking = false // default clause: never blocks
				} else {
					nComms++
				}
			}
			// The synthetic op represents the whole select for selects
			// whose comms are Arm-classified (and the block-forever
			// select{}); a single-arm select is just its bare comm op.
			if blocking && nComms != 1 {
				ops = append(ops, Op{Kind: "select", Pos: x.Pos(), Blocking: true})
			}
			return true
		case *ast.SendStmt:
			// Operands evaluate before the send commits.
			ops = append(ops, OpsIn(info, x.Chan, si)...)
			ops = append(ops, OpsIn(info, x.Value, si)...)
			ops = append(ops, Op{Kind: "send", Obj: BaseObj(info, x.Chan), Pos: x.Pos(),
				Blocking: commBlocking(x, si)})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ops = append(ops, Op{Kind: "recv", Obj: BaseObj(info, x.X), Pos: x.Pos(),
					Blocking: recvBlocking(info, x, si)})
			}
			return true
		case *ast.RangeStmt:
			if chanRange(info, x) {
				ops = append(ops, Op{Kind: "range", Obj: BaseObj(info, x.X), Pos: x.Pos(), Blocking: true})
			}
			return true
		case *ast.CallExpr:
			if obj, m, ok := WaitGroupCall(info, x); ok {
				switch m {
				case "Wait":
					ops = append(ops, Op{Kind: "wait", Obj: obj, Pos: x.Pos(), Blocking: true})
				case "Done":
					ops = append(ops, Op{Kind: "done", Obj: obj, Pos: x.Pos()})
				}
				return true
			}
			if obj, m, ok := LockCall(info, x); ok {
				if m == "Lock" || m == "RLock" {
					ops = append(ops, Op{Kind: "lock", Obj: obj, Pos: x.Pos(), Blocking: true})
				}
				return true
			}
			if call, ok := BuiltinCall(info, x, "close"); ok && len(call.Args) == 1 {
				ops = append(ops, Op{Kind: "close", Obj: BaseObj(info, call.Args[0]), Pos: x.Pos()})
				return true
			}
			if path, name, ok := pkgCall(info, x); ok && path == "time" && name == "Sleep" {
				ops = append(ops, Op{Kind: "sleep", Pos: x.Pos(), Blocking: true})
			}
			return true
		}
		return true
	})
	return ops
}

// commBlocking: a send blocks unless it is a select arm or under a
// select with default.
func commBlocking(s ast.Stmt, si SelectInfo) bool {
	return !si.Exempt[s] && !si.Arm[s]
}

// recvBlocking resolves the comm statement a receive expression sits in
// (`case <-ch:` is an ExprStmt comm, `case v := <-ch:` an AssignStmt)
// and applies the same select rules. A receive whose enclosing statement
// is not in either set blocks.
func recvBlocking(info *types.Info, recv *ast.UnaryExpr, si SelectInfo) bool {
	for comm := range si.Exempt {
		if containsNode(comm, recv) {
			return false
		}
	}
	for comm := range si.Arm {
		if containsNode(comm, recv) {
			return false
		}
	}
	return true
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(x ast.Node) bool {
		if x == target {
			found = true
		}
		return !found
	})
	return found
}

func chanRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// pkgCall is astq.PkgCall inlined to avoid an import cycle risk; it
// resolves pkg.Func(...) through import aliases.
func pkgCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// ChanCaps scans the files for channel make sites assigned to a named
// object — `ch := make(chan T, n)`, `x.f = make(chan T)`, var form —
// and returns each object's constant buffer capacity: 0 for the
// single-argument form (unbuffered), the constant for the two-argument
// form, -1 (unknown) when the capacity is not a compile-time constant.
// The first make site in source order wins for an object made twice.
func ChanCaps(info *types.Info, files []*ast.File) map[types.Object]int {
	caps := map[types.Object]int{}
	record := func(lhs, rhs ast.Expr) {
		obj := BaseObj(info, lhs)
		if obj == nil {
			return
		}
		if _, seen := caps[obj]; seen {
			return
		}
		if c, ok := MakeChanCap(info, rhs); ok {
			caps[obj] = c
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					rhs := x.Rhs[0]
					if len(x.Rhs) == len(x.Lhs) {
						rhs = x.Rhs[i]
					}
					record(lhs, rhs)
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) {
						record(name, x.Values[i])
					}
				}
			}
			return true
		})
	}
	return caps
}

// MakeChanCap recognizes a make(chan T[, n]) expression: ok reports the
// match, cap is 0 (unbuffered), the constant capacity, or -1 when the
// capacity expression is not constant.
func MakeChanCap(info *types.Info, e ast.Expr) (int, bool) {
	call, ok := BuiltinCall(info, ast.Unparen(e), "make")
	if !ok || len(call.Args) == 0 {
		return 0, false
	}
	tv, ok := info.Types[call]
	if !ok {
		return 0, false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return 0, false
	}
	if len(call.Args) == 1 {
		return 0, true
	}
	if c := ConstCap(info, e); c >= 0 {
		return c, true
	}
	return -1, true
}

// BufferCap looks for `obj := make(chan T, n)` (or = / var form) in the
// shallow body and returns the constant capacity, or -1.
func BufferCap(info *types.Info, body ast.Node, obj types.Object) int {
	cap := -1
	Shallow(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || info.ObjectOf(id) != obj {
					continue
				}
				rhs := x.Rhs[0]
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				if c := ConstCap(info, rhs); c >= 0 {
					cap = c
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if info.ObjectOf(name) != obj || i >= len(x.Values) {
					continue
				}
				if c := ConstCap(info, x.Values[i]); c >= 0 {
					cap = c
				}
			}
		}
		return true
	})
	return cap
}
