// Package seedflow enforces the per-point seeding discipline inside
// internal/experiments: every rand.NewSource / rand.New seed must derive
// from runner.PointSeed (or come straight from runner.RNG), so each
// simulation point owns an independent, reproducible stream keyed by
// (experiment seed, point index). Ad-hoc seeds — literals, raw loop
// counters, or a bare function parameter — silently correlate streams
// between points or tie an experiment's workload to whichever call site
// happened to pick the constant.
package seedflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analyzers/astq"
)

var scope = map[string]bool{
	"repro/internal/experiments": true,
}

const runnerPath = "repro/internal/runner"

var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "flag rand.NewSource/rand.New seeds in internal/experiments that do not derive from " +
		"runner.PointSeed/runner.RNG; per-point seeding is what keeps parallel experiments bit-identical",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !astq.InScope(pass.Pkg.Path(), scope) {
		return nil, nil
	}
	files := astq.LibFiles(pass.Fset, pass.Files)
	analysis.WithStack(files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := astq.PkgCall(pass.TypesInfo, call)
		if !ok || path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		var seeds []ast.Expr
		switch name {
		case "NewSource", "NewPCG":
			seeds = call.Args
		case "New":
			// rand.New(rand.NewSource(x)) reports on the inner NewSource
			// visit; only a non-constructor source argument lands here.
			if len(call.Args) == 1 {
				if inner, ok := call.Args[0].(*ast.CallExpr); ok {
					if p, n, ok := astq.PkgCall(pass.TypesInfo, inner); ok &&
						(p == "math/rand" || p == "math/rand/v2") && (n == "NewSource" || n == "NewPCG") {
						return true
					}
				}
				seeds = call.Args
			}
		default:
			return true
		}
		for _, seed := range seeds {
			if !derives(pass, seed, analysis.EnclosingFunc(stack), 0) {
				pass.Reportf(seed.Pos(),
					"seed does not derive from runner.PointSeed; use runner.RNG(seed, point) or runner.PointSeed(seed, point) so the point owns an independent reproducible stream")
			}
		}
		return true
	})
	return nil, nil
}

// derives reports whether the expression's value flows from
// runner.PointSeed or runner.RNG: either the subtree contains such a
// call, or it uses a local variable assigned (possibly transitively, up
// to a small depth) from one inside the same function.
func derives(pass *analysis.Pass, expr ast.Expr, fn ast.Node, depth int) bool {
	if expr == nil || depth > 8 {
		return false
	}
	info := pass.TypesInfo
	ok := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if path, name, isPkg := astq.PkgCall(info, x); isPkg &&
				path == runnerPath && (name == "PointSeed" || name == "RNG") {
				ok = true
			}
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil || fn == nil {
				break
			}
			for _, rhs := range assignmentsTo(info, fn, obj) {
				if derives(pass, rhs, fn, depth+1) {
					ok = true
					break
				}
			}
		}
		return !ok
	})
	return ok
}

// assignmentsTo collects right-hand sides assigned to obj within fn.
func assignmentsTo(info *types.Info, fn ast.Node, obj types.Object) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if astq.AssignedObject(info, lhs) == obj {
				out = append(out, as.Rhs[i])
			}
		}
		return true
	})
	return out
}
