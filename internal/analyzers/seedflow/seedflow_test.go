package seedflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers/seedflow"
)

func TestSeedflowFixture(t *testing.T) {
	findings := analysistest.Run(t, seedflow.Analyzer, analysistest.TestData(t), "seedflow")
	if len(findings) < 3 {
		t.Fatalf("seedflow reported %d findings on the bad fixture, want >= 3", len(findings))
	}
}
