// Package seedflowfix is a deliberately-bad fixture for the seedflow
// analyzer: ad-hoc seeds next to the sanctioned runner.PointSeed
// derivations.
package seedflowfix

import (
	"math/rand"

	"repro/internal/runner"
)

func literalSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `seed does not derive from runner.PointSeed`
}

func loopCounterSeed(points int) []*rand.Rand {
	var rngs []*rand.Rand
	for i := 0; i < points; i++ {
		rngs = append(rngs, rand.New(rand.NewSource(int64(i)))) // want `seed does not derive from runner.PointSeed`
	}
	return rngs
}

func parameterSeed(seed int64) *rand.Rand {
	// A bare parameter is not enough: the per-point derivation must be
	// visible at the construction site.
	return rand.New(rand.NewSource(seed)) // want `seed does not derive from runner.PointSeed`
}

func directOK(seed int64, point int) *rand.Rand {
	return rand.New(rand.NewSource(runner.PointSeed(seed, point)))
}

func viaLocalOK(seed int64, point int) *rand.Rand {
	s := runner.PointSeed(seed, point)
	mixed := s ^ 0x5bf0
	return rand.New(rand.NewSource(mixed))
}

func runnerRNGOK(seed int64, point int) *rand.Rand {
	return runner.RNG(seed, point)
}

func suppressed() *rand.Rand {
	return rand.New(rand.NewSource(1)) //simlint:ignore seedflow fixture exercises the directive
}
