package printfloat_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers/printfloat"
)

func TestPrintfloatFixture(t *testing.T) {
	findings := analysistest.Run(t, printfloat.Analyzer, analysistest.TestData(t), "printfloat")
	if len(findings) < 5 {
		t.Fatalf("printfloat reported %d findings on the bad fixture, want >= 5", len(findings))
	}
}
