// Package printfloatfix is a deliberately-bad fixture for the printfloat
// analyzer: floats reaching %v and %g verbs next to sanctioned
// fixed-precision formatting.
package printfloatfix

import (
	"fmt"
	"io"
	"strings"
)

func rowV(lat float64) string {
	return fmt.Sprintf("latency=%v", lat) // want `formats a float with %v`
}

func rowG(w io.Writer, throughput float64) {
	fmt.Fprintf(w, "throughput=%g f/c\n", throughput) // want `formats a float with %g`
}

func rowBigG(rate float32) string {
	return fmt.Sprintf("rate=%G", rate) // want `formats a float with %G`
}

func starWidth(sb *strings.Builder, width int, hops float64) {
	// The * consumes an argument; the float is still paired with %v.
	fmt.Fprintf(sb, "%*d hops=%v", width, 3, hops) // want `formats a float with %v`
}

func errWrap(rate float64) error {
	return fmt.Errorf("rate %v unreachable", rate) // want `formats a float with %v`
}

func fixedOK(lat, thr float64, deadlocked bool) string {
	// Fixed precision for floats, %v for non-floats: the contract's shape.
	return fmt.Sprintf("%.1f %.3f deadlocked=%v", lat, thr, deadlocked)
}

func suppressed(x float64) string {
	return fmt.Sprintf("%v", x) //simlint:ignore printfloat fixture exercises the directive
}
