// Package printfloat flags floats formatted with %v or %g in
// internal/experiments output. Those verbs use the shortest
// representation that round-trips, so a value that lands on 1.25 prints
// "1.25" while its neighbour prints "1.2499999999999998" — table columns
// wobble and golden files churn on any ULP-level change. Row output must
// use fixed-precision verbs (%.3f style) so renderings are stable under
// refactoring and across architectures.
package printfloat

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analyzers/astq"
)

var scope = map[string]bool{
	"repro/internal/experiments": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "printfloat",
	Doc: "flag %v/%g formatting of floats in experiment output; use fixed-precision verbs " +
		"(%.3f style) so rendered rows and golden files are byte-stable",
	Run: run,
}

// formatFuncs maps fmt formatting functions to the index of their format
// string argument.
var formatFuncs = map[string]int{
	"Printf":  0,
	"Sprintf": 0,
	"Errorf":  0,
	"Fprintf": 1,
	"Appendf": 1,
}

func run(pass *analysis.Pass) (any, error) {
	if !astq.InScope(pass.Pkg.Path(), scope) {
		return nil, nil
	}
	for _, file := range astq.LibFiles(pass.Fset, pass.Files) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := astq.PkgCall(pass.TypesInfo, call)
			if !ok || path != "fmt" {
				return true
			}
			fmtIdx, ok := formatFuncs[name]
			if !ok || len(call.Args) <= fmtIdx {
				return true
			}
			format, ok := constantString(pass.TypesInfo, call.Args[fmtIdx])
			if !ok {
				return true
			}
			checkFormat(pass, call, name, format, call.Args[fmtIdx+1:])
			return true
		})
	}
	return nil, nil
}

func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkFormat walks the verbs of a format string, pairing them with the
// variadic arguments, and reports %v/%g (and %G) applied to a float.
func checkFormat(pass *analysis.Pass, call *ast.CallExpr, fname, format string, args []ast.Expr) {
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		verb := byte(0)
		for ; i < len(format); i++ {
			c := format[i]
			switch {
			case c == '*':
				arg++ // dynamic width/precision consumes an argument
			case c == '[':
				// Explicit argument indexes reorder consumption; bail out
				// of this format string rather than misattribute types.
				return
			case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
				verb = c
			}
			if verb != 0 {
				break
			}
		}
		if verb == 0 {
			return
		}
		if verb == 'v' || verb == 'g' || verb == 'G' {
			if arg < len(args) && isFloat(pass.TypesInfo.TypeOf(args[arg])) {
				pass.Reportf(call.Pos(),
					"fmt.%s formats a float with %%%c; use a fixed-precision verb like %%.3f so experiment rows are byte-stable", fname, verb)
			}
		}
		arg++
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
