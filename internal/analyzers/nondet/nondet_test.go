package nondet_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers/nondet"
)

func TestNondetFixture(t *testing.T) {
	findings := analysistest.Run(t, nondet.Analyzer, analysistest.TestData(t), "nondet")
	// Regression guard: an analyzer that silently stops reporting would
	// otherwise pass a fixture with no want comments left.
	if len(findings) < 9 {
		t.Fatalf("nondet reported %d findings on the bad fixture, want >= 9", len(findings))
	}
}
