// Package nondetfix is a deliberately-bad fixture: every diagnostic the
// nondet analyzer can produce appears at least once, so the analysistest
// suite fails loudly if the analyzer regresses to zero findings.
package nondetfix

import (
	mrand "math/rand"
	"time"
)

func globalRand() int {
	n := mrand.Intn(10) // want `global math/rand Intn`
	mrand.Shuffle(n, func(i, j int) {}) // want `global math/rand Shuffle`
	mrand.Seed(42) // want `global math/rand Seed`
	return n + int(mrand.Int63()) // want `global math/rand Int63`
}

func wallClock() time.Duration {
	start := time.Now() // want `wall-clock time.Now outside the accounting allowlist`
	time.Sleep(time.Millisecond) // want `wall-clock time.Sleep outside the accounting allowlist`
	return time.Since(start) // want `wall-clock time.Since outside the accounting allowlist`
}

func clockSeed() *mrand.Rand {
	// Both the wall-clock read and the clock-derived seed are reported.
	return mrand.New(mrand.NewSource(time.Now().UnixNano())) // want `rand New seeded from the wall clock` `rand NewSource seeded from the wall clock` `wall-clock time.Now outside the accounting allowlist`
}

func explicitOK(seed int64) *mrand.Rand {
	// Constructing an explicit generator from a caller-supplied seed is
	// exactly what the contract wants; no diagnostics here.
	return mrand.New(mrand.NewSource(seed))
}

func suppressed() int {
	return mrand.Intn(3) //simlint:ignore nondet fixture exercises the directive
}

func rogueGoroutine(ch chan int) {
	// A bare goroutine in a contract package is a scheduling dependence
	// waiting to leak into a result; only the audited barrier pools may
	// fan out.
	go func() { ch <- 1 }() // want `goroutine launched outside the audited barrier pools`
}
