// Package nondet flags ambient nondeterminism — the shared global
// math/rand generator and wall-clock reads — in the packages covered by
// the determinism contract. Experiment results must be a pure function of
// (topology, workload, seed); the only sanctioned randomness is an
// explicit *rand.Rand seeded through internal/runner, and the only
// sanctioned wall-clock reads are the campaign cost accounting sites.
package nondet

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analyzers/astq"
)

// scope is the set of repo packages the contract covers. internal/runner
// is deliberately absent: it implements the seeding discipline and the
// wall-clock accounting the rest of the tree must route through.
var scope = map[string]bool{
	"repro/internal/sim":         true,
	"repro/internal/router":      true,
	"repro/internal/routing":     true,
	"repro/internal/topology":    true,
	"repro/internal/workload":    true,
	"repro/internal/experiments": true,
	"repro/internal/fabricver":   true,
	"repro/internal/chaos":       true,
	"repro/internal/serve":       true,
}

// allowWallClock maps package path to file base names where wall-clock
// reads are legitimate: experiments' entries feed runner.Stats wall-time
// accounting, which never reaches a result row; serve funnels every
// timed wait through the Clock seam, whose production implementation is
// the single allowlisted file.
var allowWallClock = map[string]map[string]bool{
	"repro/internal/experiments": {"campaign.go": true},
	"repro/internal/serve":       {"clock.go": true},
}

// allowGoroutines maps package path to file base names where go statements
// are sanctioned: the audited barrier pools whose scheduling provably never
// reaches a result (routing's merge-in-order parallel table builder and the
// sim engine's sharded planner). Anywhere else in the contract packages a
// goroutine is a latent scheduling dependence and is flagged.
var allowGoroutines = map[string]map[string]bool{
	"repro/internal/routing": {"parallel.go": true},
	"repro/internal/sim":     {"shard.go": true},
	// serve's goroutines (acceptor, queue workers, refill ticker) are
	// joined by Close and certified leak-free by the codecert golden;
	// none of their scheduling reaches a result row.
	"repro/internal/serve": {"serve.go": true},
}

// randConstructors are the math/rand package-level functions that build
// explicit generators rather than draw from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// wallClockFuncs are the time package functions that observe or depend on
// the wall clock (or a timer derived from it).
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"After":     true,
	"AfterFunc": true,
	"Sleep":     true,
}

var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc: "flag global math/rand use, wall-clock reads, and unsanctioned goroutines in " +
		"determinism-contract packages; randomness must flow through an explicit runner-seeded " +
		"*rand.Rand, wall time only through the campaign accounting sites, and parallelism only " +
		"through the audited barrier pools",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pkgPath := pass.Pkg.Path()
	if !astq.InScope(pkgPath, scope) {
		return nil, nil
	}
	for _, file := range astq.LibFiles(pass.Fset, pass.Files) {
		base := baseOf(pass, file)
		wallClockOK := allowWallClock[pkgPath][base]
		goroutineOK := allowGoroutines[pkgPath][base]
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if !goroutineOK {
					pass.Reportf(g.Pos(),
						"goroutine launched outside the audited barrier pools; fan out across points via runner.Map, or inside a run via the sharded planner (internal/sim/shard.go), so scheduling can never reach a result")
				}
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := astq.PkgCall(pass.TypesInfo, call)
			if !ok {
				return true
			}
			switch path {
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					pass.Reportf(call.Pos(),
						"global math/rand %s draws from the shared process-wide generator; use an explicit *rand.Rand seeded via runner.RNG/runner.PointSeed", name)
				} else if seedsFromClock(pass, call) {
					pass.Reportf(call.Pos(),
						"rand %s seeded from the wall clock; derive the seed from runner.PointSeed so runs are reproducible", name)
				}
			case "time":
				if wallClockFuncs[name] && !wallClockOK {
					pass.Reportf(call.Pos(),
						"wall-clock time.%s outside the accounting allowlist; route timing through runner.Stats (see internal/experiments/campaign.go)", name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// seedsFromClock reports whether any argument of a rand constructor call
// contains a wall-clock read (the classic rand.NewSource(time.Now().UnixNano())).
func seedsFromClock(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			if inner, ok := n.(*ast.CallExpr); ok {
				if path, name, ok := astq.PkgCall(pass.TypesInfo, inner); ok &&
					path == "time" && wallClockFuncs[name] {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func baseOf(pass *analysis.Pass, file *ast.File) string {
	name := pass.Fset.Position(file.Pos()).Filename
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}
