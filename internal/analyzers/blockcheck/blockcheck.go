// Package blockcheck classifies every function by its blocking effect —
// non-blocking, bounded-blocking, or may-block-indefinitely — and
// enforces that functions marked as the simulator's per-cycle hot path
// are provably non-blocking outside the sanctioned barrier.
//
// The effect is a three-point lattice propagated over the call graph:
//
//	non-blocking < bounded-blocking < may-block-indefinitely
//
// Direct operations seed it: a mutex acquire or a sleep is bounded (the
// holder releases, the clock advances — progress does not depend on
// another goroutine's communication decision), while a blocking channel
// send/receive/range, a WaitGroup.Wait or a no-default select can park a
// goroutine until some other goroutine elects to rendezvous —
// indefinitely, if that goroutine never does. A function's effect is the
// maximum of its direct ops and its statically resolved callees'.
//
// Two directives steer enforcement, written as the last lines of a
// function's doc comment:
//
//	//simlint:hotpath — the function must be non-blocking outside barriers
//	//simlint:barrier — calls to it are the sanctioned blocking point
//
// A hot-path function's effect is recomputed with barrier-marked callees
// contributing nothing; anything left — even bounded blocking — is
// reported with a shortest witness call chain down to the operation that
// blocks. This is the code-level analogue of the paper's wormhole
// discipline: the routing decision (planMoves and the shard classify
// loops) must never stall on a dependent resource; the only legal wait
// is the end-of-cycle barrier, which the wait-for graph separately
// proves cycle-free.
//
// Unlike the wait-for analyzers, the call list here is collected
// directly (skipping go statements and non-invoked literals) rather than
// taken from the call graph's encloser links: a spawned goroutine's
// blocking is the goroutine's, not the spawner's — go f() returns
// immediately no matter what f does.
package blockcheck

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analyzers/astq"
	"repro/internal/analyzers/conc"
)

// Effect levels, ordered.
const (
	nonBlocking = iota
	boundedBlocking
	mayBlock
)

func levelName(l int) string {
	switch l {
	case boundedBlocking:
		return "bounded-blocking"
	case mayBlock:
		return "may-block-indefinitely"
	}
	return "non-blocking"
}

// FuncEffect records one function whose whole effect (barriers included)
// is not non-blocking, with a shortest witness chain.
type FuncEffect struct {
	Func   string
	Effect string
	Via    string
}

// HotPath is the verdict for one //simlint:hotpath function: its effect
// outside barrier-marked callees, whether that passes, and the witness
// chain when it does not (or when a barrier exclusion did the saving).
type HotPath struct {
	Func   string
	Pos    token.Position
	Effect string
	OK     bool
	Via    string
}

// Result is the per-package effect table, exported for the code
// certificate.
type Result struct {
	Funcs    []FuncEffect
	HotPaths []HotPath
	Barriers []string
}

var Analyzer = &analysis.Analyzer{
	Name: "blockcheck",
	Doc: "classify every function's blocking effect (non-blocking / bounded-blocking / " +
		"may-block-indefinitely) over the call graph and require //simlint:hotpath " +
		"functions to be non-blocking outside //simlint:barrier callees, with a witness " +
		"call chain for every violation",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !conc.InScope(pass.Pkg.Path()) {
		return Result{}, nil
	}
	files := astq.LibFiles(pass.Fset, pass.Files)
	g := callgraph.Build(pass.TypesInfo, files)

	a := &scanner{
		pass:    pass,
		g:       g,
		direct:  map[*callgraph.Func]directOp{},
		calls:   map[*callgraph.Func][]*callgraph.Func{},
		barrier: map[*callgraph.Func]bool{},
		hotpath: map[*callgraph.Func]bool{},
	}
	a.collect()
	effAll := a.fixpoint(false)
	effNoB := a.fixpoint(true)

	res := a.result(effAll, effNoB)
	a.enforce(res)
	return res, nil
}

// directOp is the strongest direct operation of one function: its level
// and the op kind that establishes it (for witness chains).
type directOp struct {
	level int
	kind  string
}

type scanner struct {
	pass    *analysis.Pass
	g       *callgraph.Graph
	direct  map[*callgraph.Func]directOp
	calls   map[*callgraph.Func][]*callgraph.Func
	barrier map[*callgraph.Func]bool
	hotpath map[*callgraph.Func]bool
}

// opLevel maps one synchronization op to its effect level. Lock and
// sleep are bounded: the wait ends without another goroutine choosing to
// communicate. Blocking channel traffic, Wait and no-default selects may
// park forever.
func opLevel(op conc.Op) int {
	switch op.Kind {
	case "lock", "sleep":
		return boundedBlocking
	case "send", "recv", "range", "wait", "select":
		if op.Blocking {
			return mayBlock
		}
	}
	return nonBlocking
}

// collect computes each function's direct op level, its own call list
// (shallow, go statements skipped, defers and immediately invoked
// literals included), and its directives.
func (a *scanner) collect() {
	info := a.pass.TypesInfo
	for _, f := range a.g.Funcs {
		if f.Body == nil {
			continue
		}
		si := conc.CollectSelectInfo(f.Body)
		d := directOp{}
		for _, op := range conc.OpsIn(info, f.Body, si) {
			if l := opLevel(op); l > d.level {
				d = directOp{level: l, kind: op.Kind}
			}
		}
		a.direct[f] = d
		conc.Shallow(f.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := a.g.StaticCallee(info, call); callee != nil {
					a.calls[f] = append(a.calls[f], callee)
				}
			}
			return true
		})
		if f.Decl != nil && f.Decl.Doc != nil {
			for _, c := range f.Decl.Doc.List {
				switch {
				case strings.HasPrefix(c.Text, "//simlint:hotpath"):
					a.hotpath[f] = true
				case strings.HasPrefix(c.Text, "//simlint:barrier"):
					a.barrier[f] = true
				}
			}
		}
	}
}

// fixpoint propagates effects over the call lists to a deterministic
// fixed point. With noBarrier set, barrier-marked callees contribute
// nothing — the hot-path variant.
func (a *scanner) fixpoint(noBarrier bool) map[*callgraph.Func]int {
	eff := map[*callgraph.Func]int{}
	for f, d := range a.direct {
		eff[f] = d.level
	}
	for changed := true; changed; {
		changed = false
		for _, f := range a.g.Funcs {
			for _, callee := range a.calls[f] {
				if noBarrier && a.barrier[callee] {
					continue
				}
				if eff[callee] > eff[f] {
					eff[f] = eff[callee]
					changed = true
				}
			}
		}
	}
	return eff
}

// witness returns the shortest call chain from f down to a function
// whose direct op level equals target, as "f -> g -> h (op)", following
// the same edges the fixpoint used. BFS over source-ordered call lists
// keeps it deterministic.
func (a *scanner) witness(f *callgraph.Func, target int, noBarrier bool) string {
	type node struct {
		f     *callgraph.Func
		chain []*callgraph.Func
	}
	seen := map[*callgraph.Func]bool{f: true}
	queue := []node{{f, []*callgraph.Func{f}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if d := a.direct[n.f]; d.level == target {
			names := make([]string, len(n.chain))
			for i, g := range n.chain {
				names[i] = a.funcName(g)
			}
			return strings.Join(names, " -> ") + " (" + d.kind + ")"
		}
		for _, callee := range a.calls[n.f] {
			if seen[callee] || (noBarrier && a.barrier[callee]) {
				continue
			}
			seen[callee] = true
			queue = append(queue, node{callee, append(append([]*callgraph.Func{}, n.chain...), callee)})
		}
	}
	return a.funcName(f)
}

func (a *scanner) funcName(f *callgraph.Func) string {
	return a.pass.Pkg.Path() + "." + f.Name
}

// result renders the sorted effect table.
func (a *scanner) result(effAll, effNoB map[*callgraph.Func]int) Result {
	res := Result{}
	for _, f := range a.g.Funcs {
		if f.Body == nil {
			continue
		}
		if l := effAll[f]; l > nonBlocking {
			res.Funcs = append(res.Funcs, FuncEffect{
				Func:   a.funcName(f),
				Effect: levelName(l),
				Via:    a.witness(f, l, false),
			})
		}
		if a.hotpath[f] {
			l := effNoB[f]
			hp := HotPath{
				Func:   a.funcName(f),
				Pos:    a.pass.Fset.Position(f.Decl.Pos()),
				Effect: levelName(l),
				OK:     l == nonBlocking,
			}
			if l > nonBlocking {
				hp.Via = a.witness(f, l, true)
			}
			res.HotPaths = append(res.HotPaths, hp)
		}
		if a.barrier[f] {
			res.Barriers = append(res.Barriers, a.funcName(f))
		}
	}
	sort.Slice(res.Funcs, func(i, j int) bool { return res.Funcs[i].Func < res.Funcs[j].Func })
	sort.Slice(res.HotPaths, func(i, j int) bool { return res.HotPaths[i].Func < res.HotPaths[j].Func })
	sort.Strings(res.Barriers)
	return res
}

// enforce reports every hot-path function whose barrier-free effect is
// not non-blocking.
func (a *scanner) enforce(res Result) {
	for _, hp := range res.HotPaths {
		if hp.OK {
			continue
		}
		pos := a.hotPathPos(hp.Func)
		switch hp.Effect {
		case "may-block-indefinitely":
			a.pass.Reportf(pos,
				"hot-path function %s may block indefinitely outside the sanctioned barrier: %s — the per-cycle hot path must be provably non-blocking",
				hp.Func, hp.Via)
		default:
			a.pass.Reportf(pos,
				"hot-path function %s blocks boundedly on the hot path: %s — even bounded waits (locks, sleeps) are barred from the per-cycle hot path",
				hp.Func, hp.Via)
		}
	}
}

func (a *scanner) hotPathPos(name string) token.Pos {
	for f := range a.hotpath {
		if a.funcName(f) == name && f.Decl != nil {
			return f.Decl.Pos()
		}
	}
	return token.NoPos
}
