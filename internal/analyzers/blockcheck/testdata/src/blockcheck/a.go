// Fixture for the blockcheck analyzer: a clean hot path, a hot path
// reaching an unbounded receive through a helper (flagged with its
// witness chain), a hot path whose only blocking sits behind a
// sanctioned barrier (allowed), a bounded lock on the hot path (still
// barred, distinct message), and a polling select with default
// (non-blocking).
package blockcheck

import "sync"

type state struct {
	mu sync.Mutex
	ch chan int
}

// hotClean computes without synchronizing: the effect is non-blocking.
//
//simlint:hotpath
func hotClean(s *state) int {
	n := 0
	for i := 0; i < 4; i++ {
		n += i
	}
	return n
}

// helperRecv parks until some other goroutine sends.
func helperRecv(s *state) int { return <-s.ch }

// hotBlocking reaches the unbounded receive through the helper: the
// effect propagates up the call chain and the witness names it.
//
//simlint:hotpath
func hotBlocking(s *state) int { // want `hot-path function blockcheck\.hotBlocking may block indefinitely outside the sanctioned barrier: blockcheck\.hotBlocking -> blockcheck\.helperRecv \(recv\)`
	return helperRecv(s)
}

// barrierWait is the sanctioned rendezvous point.
//
//simlint:barrier
func barrierWait(s *state) { <-s.ch }

// hotViaBarrier blocks only through the sanctioned barrier, which the
// hot-path variant excludes: allowed, no diagnostic.
//
//simlint:hotpath
func hotViaBarrier(s *state) { barrierWait(s) }

// hotBounded takes a mutex: bounded blocking, still barred from the hot
// path, with its own message.
//
//simlint:hotpath
func hotBounded(s *state) { // want `hot-path function blockcheck\.hotBounded blocks boundedly on the hot path: blockcheck\.hotBounded \(lock\)`
	s.mu.Lock()
	s.mu.Unlock()
}

// hotSelectDefault polls without parking — the default clause makes
// every comm non-blocking.
//
//simlint:hotpath
func hotSelectDefault(s *state) int {
	select {
	case v := <-s.ch:
		return v
	default:
		return 0
	}
}
