package blockcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers/blockcheck"
)

func TestBlockcheckFixture(t *testing.T) {
	findings := analysistest.Run(t, blockcheck.Analyzer, analysistest.TestData(t), "blockcheck")
	// Regression guard: the fixture holds one indefinite and one bounded
	// hot-path violation.
	if len(findings) < 2 {
		t.Fatalf("blockcheck reported %d findings on the bad fixture, want >= 2", len(findings))
	}
}
