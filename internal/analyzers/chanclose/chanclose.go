// Package chanclose audits channel sends executed by spawned goroutines:
// a send with no guaranteed consumer blocks its goroutine forever — the
// code-level analogue of a flit parked in a buffer no route drains. For
// every `go` statement, each send statement in the spawned body must be
// covered by one of:
//
//   - the send sits in a `select` with a `default` clause (it can never
//     block — the escape valve the paper's adaptive routes use);
//   - the channel has a constant buffer capacity >= 1 at its make site
//     (the shardPool `done` channel: one slot per barrier round, drained
//     before the next dispatch);
//   - a receive from the channel is guaranteed on every CFG exit path of
//     the spawning function, or — when the channel is (published to) a
//     struct field — a receive exists somewhere in the package.
//
// The buffered exemption is deliberately shallow (a goroutine looping
// sends into a cap-1 channel can still block); pairing it with goleak's
// join obligation keeps the combination honest, and the certificate
// records which guarantee covered each send so a reviewer can audit the
// reasoning.
package chanclose

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analyzers/astq"
	"repro/internal/analyzers/conc"
)

// Send is the audit record of one channel send inside a spawned
// goroutine, exported into the code certificate.
type Send struct {
	Pos       token.Position
	Func      string // spawning function
	Chan      string // channel identity
	Guarantee string // how the send was proven non-blocking (empty when not)
	OK        bool
}

// Result is the per-package send audit, sorted by position.
type Result struct {
	Sends []Send
}

var Analyzer = &analysis.Analyzer{
	Name: "chanclose",
	Doc: "require every channel send in a spawned goroutine to have a guaranteed consumer: " +
		"a select with default, a constant buffer, or a receive proven on all exit paths " +
		"of the spawner",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !conc.InScope(pass.Pkg.Path()) {
		return Result{}, nil
	}
	files := astq.LibFiles(pass.Fset, pass.Files)
	g := callgraph.Build(pass.TypesInfo, files)
	a := &auditor{pass: pass, g: g, files: files}

	sites := conc.SpawnSites(files)
	encls := make([]ast.Node, 0, len(sites))
	for encl := range sites {
		encls = append(encls, encl)
	}
	sort.Slice(encls, func(i, j int) bool { return encls[i].Pos() < encls[j].Pos() })

	var res Result
	for _, encl := range encls {
		f := g.FuncFor(encl)
		if f == nil || f.Body == nil {
			continue
		}
		c := cfg.New(f.Body)
		for _, gs := range sites[encl] {
			for _, snd := range a.audit(f, c, gs) {
				if !snd.OK {
					pass.Reportf(snd.pos, "blocking send in goroutine spawned by %s: %s", snd.Func, snd.Guarantee)
					snd.Guarantee = ""
				}
				res.Sends = append(res.Sends, snd.Send)
			}
		}
	}
	sort.Slice(res.Sends, func(i, j int) bool {
		x, y := res.Sends[i], res.Sends[j]
		if x.Pos.Filename != y.Pos.Filename {
			return x.Pos.Filename < y.Pos.Filename
		}
		return x.Pos.Offset < y.Pos.Offset
	})
	return res, nil
}

type auditor struct {
	pass  *analysis.Pass
	g     *callgraph.Graph
	files []*ast.File
}

// sendAudit carries the report position alongside the certificate record.
type sendAudit struct {
	Send
	pos token.Pos
}

// audit classifies every send in the body spawned by one go statement.
// Failed audits return the failure explanation in Guarantee (the caller
// reports it and clears the field).
func (a *auditor) audit(f *callgraph.Func, c *cfg.CFG, gs *ast.GoStmt) []sendAudit {
	info := a.pass.TypesInfo
	body, mapParam, ok := conc.SpawnTarget(info, a.g, gs)
	if !ok {
		return nil // goleak already reports unresolvable spawns
	}

	// Sends under a select that has a default clause can never block.
	exempt := map[*ast.SendStmt]bool{}
	conc.Shallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cs := range sel.Body.List {
			if cs.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cs := range sel.Body.List {
			if s, ok := cs.(*ast.CommClause).Comm.(*ast.SendStmt); ok {
				exempt[s] = true
			}
		}
		return true
	})

	var out []sendAudit
	conc.Shallow(body, func(n ast.Node) bool {
		s, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		snd := sendAudit{pos: s.Pos()}
		snd.Pos = a.pass.Fset.Position(s.Pos())
		snd.Func = f.Name
		obj := mapParam(conc.BaseObj(info, s.Chan))
		if obj == nil {
			snd.Chan = "?"
			snd.Guarantee = "send on a channel the spawner cannot name"
			out = append(out, snd)
			return true
		}
		snd.Chan = conc.ObjName(a.pass.Pkg, f.Name, obj)
		switch {
		case exempt[s]:
			snd.Guarantee = "select with default"
			snd.OK = true
		default:
			snd.Send = a.verify(snd.Send, f, c, gs, body, obj)
		}
		out = append(out, snd)
		return true
	})
	return out
}

// verify applies the buffered / local-receive / field-receive rules.
func (a *auditor) verify(snd Send, f *callgraph.Func, c *cfg.CFG, gs *ast.GoStmt, spawned ast.Node, obj types.Object) Send {
	info := a.pass.TypesInfo
	if cap := conc.BufferCap(info, f.Body, obj); cap >= 1 {
		snd.Guarantee = fmt.Sprintf("buffered (cap %d)", cap)
		snd.OK = true
		return snd
	}
	if cap := conc.BufferCap(info, spawned, obj); cap >= 1 {
		snd.Guarantee = fmt.Sprintf("buffered (cap %d)", cap)
		snd.OK = true
		return snd
	}
	hit := func(n ast.Node) bool { return conc.RecvsFrom(info, n, obj) }
	if conc.IsField(obj) {
		if fn := a.packageWide(obj); fn != "" {
			snd.Guarantee = "receive in " + fn
			snd.OK = true
			return snd
		}
		snd.Guarantee = fmt.Sprintf("no receive from %s anywhere in the package", snd.Chan)
		return snd
	}
	if c.EveryPathHits(gs, hit) {
		snd.Guarantee = "receive on every exit path of " + f.Name
		snd.OK = true
		return snd
	}
	if alias := conc.FieldAlias(info, f.Body, obj); alias != nil {
		if fn := a.packageWide(alias); fn != "" {
			snd.Chan = snd.Chan + " (published as " + conc.ObjName(a.pass.Pkg, f.Name, alias) + ")"
			snd.Guarantee = "receive in " + fn
			snd.OK = true
			return snd
		}
	}
	snd.Guarantee = fmt.Sprintf("receive from %s is not guaranteed on every exit path of %s", snd.Chan, f.Name)
	return snd
}

// packageWide scans the whole package for a receive from obj, returning
// the containing function's name or "".
func (a *auditor) packageWide(obj types.Object) string {
	info := a.pass.TypesInfo
	found := ""
	analysis.WithStack(a.files, func(n ast.Node, stack []ast.Node) bool {
		if found != "" {
			return false
		}
		match := false
		switch x := n.(type) {
		case *ast.UnaryExpr:
			match = x.Op == token.ARROW && conc.BaseObj(info, x.X) == obj
		case *ast.RangeStmt:
			match = conc.BaseObj(info, x.X) == obj
		}
		if match {
			if f := a.g.FuncFor(analysis.EnclosingFunc(stack)); f != nil {
				found = f.Name
			} else {
				found = "package scope"
			}
			return false
		}
		return true
	})
	return found
}
