package chanclose_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers/chanclose"
)

func TestChancloseFixture(t *testing.T) {
	findings := analysistest.Run(t, chanclose.Analyzer, analysistest.TestData(t), "chanclose")
	// Regression guard: an analyzer that silently stops reporting would
	// otherwise pass a fixture with no want comments left.
	if len(findings) < 4 {
		t.Fatalf("chanclose reported %d findings on the bad fixture, want >= 4", len(findings))
	}
}
