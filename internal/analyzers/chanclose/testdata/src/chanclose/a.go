// Fixture for the chanclose analyzer: channel sends inside spawned
// goroutines with and without a guaranteed consumer. Diagnostics land on
// the send statement itself.
package chanclose

// blockNoReceiver sends into the void: the goroutine parks forever.
func blockNoReceiver() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want `receive from blockNoReceiver.ch is not guaranteed on every exit path`
	}()
}

// blockConditionalRecv drains on one branch only.
func blockConditionalRecv(b bool) {
	ch := make(chan int)
	go func() {
		ch <- 1 // want `receive from blockConditionalRecv.ch is not guaranteed on every exit path`
	}()
	if b {
		<-ch
	}
}

// okRecv is the guaranteed local receive.
func okRecv() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	<-ch
}

// okBuffered: a constant-capacity buffer absorbs the send.
func okBuffered() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
}

// okSelectDefault: a send under select-with-default can never block.
func okSelectDefault(ch chan int) {
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// sender's send is audited at each spawn that runs it; blockParam spawns
// it with a channel nobody drains.
func sender(out chan int) {
	out <- 1 // want `receive from blockParam.ch is not guaranteed on every exit path`
}

func blockParam() {
	ch := make(chan int)
	go sender(ch)
}

// q publishes its channel as a field; the receive lives in another
// method, found by the package-wide rule.
type q struct {
	ch chan int
}

func (x *q) start() {
	go func() {
		x.ch <- 1
	}()
}

func (x *q) drain() int {
	return <-x.ch
}

// qleak has the same spawn shape with no receiver anywhere.
type qleak struct {
	ch chan int
}

func (x *qleak) start() {
	go func() {
		x.ch <- 1 // want `no receive from chanclose.qleak.ch anywhere in the package`
	}()
}
