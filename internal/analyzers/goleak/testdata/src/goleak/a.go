// Fixture for the goleak analyzer: spawns with missing, partial, or
// conditional join obligations, next to the correct forms each one
// should have used.
package goleak

import "sync"

// leakNoObligation spawns a goroutine nothing ever observes.
func leakNoObligation() {
	go func() { // want `no join obligation in spawned body`
		println("work")
	}()
}

// leakNoWait has the Done half of the balance but never Waits.
func leakNoWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `Wait on leakNoWait.wg is not guaranteed on every exit path`
		defer wg.Done()
	}()
}

// leakConditionalWait joins on one branch only; the no-wait exit path is
// the leak.
func leakConditionalWait(b bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `Wait on leakConditionalWait.wg is not guaranteed on every exit path`
		defer wg.Done()
	}()
	if b {
		wg.Wait()
	}
}

// leakNoAdd waits, but the counter was never incremented: Wait returns
// immediately and the goroutine outlives the join.
func leakNoAdd() {
	var wg sync.WaitGroup
	go func() { // want `no wg.Add reaches the spawn`
		defer wg.Done()
	}()
	wg.Wait()
}

// leakDynamic spawns through a function value the analyzer cannot
// resolve; an unverifiable join is a loud failure, not a silent pass.
func leakDynamic(f func()) {
	go f() // want `not statically resolvable`
}

// okWait is the canonical local balance.
func okWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// okDeferredWait registers the join before the spawns; a deferred Wait
// covers every exit path by construction.
func okDeferredWait(n int) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}

// okChanSignal joins on a channel the goroutine signals on.
func okChanSignal() {
	done := make(chan int)
	go func() {
		done <- 1
	}()
	<-done
}

// leakChanSignal only drains the signal on one branch.
func leakChanSignal(b bool) {
	done := make(chan int)
	go func() { // want `receive on leakChanSignal.done is not guaranteed on every exit path`
		done <- 1
	}()
	if b {
		<-done
	}
}

// okChanRange: a ranging worker exits when its channel is closed.
func okChanRange() {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	close(ch)
}

// leakChanRange never closes the channel its worker ranges over.
func leakChanRange() {
	ch := make(chan int)
	go func() { // want `close on leakChanRange.ch is not guaranteed on every exit path`
		for range ch {
		}
	}()
}
