// Second fixture file: spawned named functions with the obligation on a
// parameter (mapped back to the caller's argument), and the struct-field
// WaitGroup pattern where another method owns the Wait — the shardPool
// shape.
package goleak

import "sync"

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

// okParam joins a named-function spawn through the mapped argument.
func okParam() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

// leakParam maps the same obligation but never joins it.
func leakParam() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg) // want `Wait on leakParam.wg is not guaranteed on every exit path`
}

// pool is the shardPool shape: the Wait lives in close, not next to the
// spawn, so the field rule must find it package-wide.
type pool struct {
	wg   sync.WaitGroup
	jobs chan func()
}

func newPool() *pool {
	p := &pool{jobs: make(chan func())}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for f := range p.jobs {
			f()
		}
	}()
	return p
}

func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// leakyPool has the same spawn but nobody in the package ever Waits.
type leakyPool struct {
	wg sync.WaitGroup
}

func newLeakyPool() *leakyPool {
	p := &leakyPool{}
	p.wg.Add(1)
	go func() { // want `no Wait on goleak.leakyPool.wg anywhere in the package`
		defer p.wg.Done()
	}()
	return p
}
