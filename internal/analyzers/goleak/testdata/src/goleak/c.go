// Third fixture file: spawn shapes the call graph cannot resolve — a
// method value, a function-typed struct field, and a function parameter.
// Each fails loud: a join obligation that cannot be verified is a
// finding, never a silent pass (the conservative-quiet choice applies to
// effects folded into callers, not to spawn audits).
package goleak

type runner struct{ fn func() }

func (r *runner) work() {}

// spawnMethodValue spawns through a method value: by the spawn site the
// callee is a plain func value, so the target does not resolve.
func spawnMethodValue(r *runner) {
	mv := r.work
	go mv() // want `spawned function is not statically resolvable`
}

// spawnFieldFunc spawns through a function-typed struct field.
func spawnFieldFunc(r *runner) {
	go r.fn() // want `spawned function is not statically resolvable`
}

// spawnParam spawns a function passed in as a parameter.
func spawnParam(fn func()) {
	go fn() // want `spawned function is not statically resolvable`
}
