package goleak_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/load"
	"repro/internal/analyzers/goleak"
)

func TestGoleakFixture(t *testing.T) {
	findings := analysistest.Run(t, goleak.Analyzer, analysistest.TestData(t), "goleak")
	// Regression guard: an analyzer that silently stops reporting would
	// otherwise pass a fixture with no want comments left.
	if len(findings) < 12 {
		t.Fatalf("goleak reported %d findings on the bad fixture, want >= 12", len(findings))
	}
}

// TestGoleakResult checks the audit trail the certificate consumes: every
// spawn in the fixture must appear, with the failures flagged not-OK.
func TestGoleakResult(t *testing.T) {
	pkg, err := load.Fixture(filepath.Join(analysistest.TestData(t), "goleak"))
	if err != nil {
		t.Fatal(err)
	}
	_, results, err := analysis.Run([]*analysis.Analyzer{goleak.Analyzer}, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := results[goleak.Analyzer.Name].(goleak.Result)
	if !ok {
		t.Fatalf("goleak result has type %T, want goleak.Result", results[goleak.Analyzer.Name])
	}
	var passed, failed int
	for _, sp := range res.Spawns {
		if sp.OK {
			passed++
		} else {
			failed++
		}
	}
	// a.go has 11 spawns (7 leaks, 4 ok), b.go has 4 (2 leaks, 2 ok), and
	// c.go has 3 unresolvable spawns (all leaks).
	if passed < 6 || failed < 12 {
		t.Fatalf("audit saw %d ok / %d failed spawns, want >= 6 / >= 12", passed, failed)
	}
}
