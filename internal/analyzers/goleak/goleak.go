// Package goleak audits every `go` statement for a join obligation: some
// mechanism by which the rest of the program observes the goroutine's
// termination. The accepted obligations, in the order they are tried:
//
//  1. WaitGroup: the spawned body calls X.Done (directly or via a defer;
//     on a parameter, the argument's object). The spawn is joined when an
//     X.Add reaches the spawn site and X.Wait is guaranteed — on every
//     CFG exit path of the spawning function for a local WaitGroup (a
//     defer registered before the spawn counts), or anywhere in the
//     package for a struct-field WaitGroup (the shardPool pattern, where
//     close() owns the Wait).
//  2. Channel signal: the spawned body sends on a channel; the join is a
//     guaranteed receive — every exit path of the spawner, or anywhere in
//     the package when the channel is (published to) a field.
//  3. Channel range: the spawned body's top loop ranges over a channel;
//     the goroutine exits when the channel is closed, so the obligation
//     is a guaranteed close, resolved with the same local/field rule.
//
// A spawn with no obligation, an unverifiable one, or a statically
// unresolvable spawned function is reported: this is the analyzer a
// deadlock-freedom certificate leans on, so it is loud where the graph is
// blind. These are exactly the shutdown paths PR 6 audited by hand
// (runner.Map, routing.ForAllPairs, sim.shardPool); this analyzer pins
// that audit in CI.
package goleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analyzers/astq"
	"repro/internal/analyzers/conc"
)

// Spawn is the audit record of one go statement, exported into the code
// certificate.
type Spawn struct {
	Pos        token.Position
	Func       string // spawning function
	Obligation string // "waitgroup", "channel-recv", "channel-range", "none"
	On         string // the WaitGroup / channel identity the obligation is on
	Join       string // how the join was proven (empty when not proven)
	OK         bool
}

// Result is the per-package spawn audit, sorted by position.
type Result struct {
	Spawns []Spawn
}

var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "require a join obligation on every go statement — WaitGroup Add/Done/Wait balance " +
		"or a channel signal/close guaranteed on every exit path — so no goroutine outlives " +
		"its spawner unobserved",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !conc.InScope(pass.Pkg.Path()) {
		return Result{}, nil
	}
	files := astq.LibFiles(pass.Fset, pass.Files)
	g := callgraph.Build(pass.TypesInfo, files)
	a := &auditor{pass: pass, g: g, files: files}

	sites := conc.SpawnSites(files)
	encls := make([]ast.Node, 0, len(sites))
	for encl := range sites {
		encls = append(encls, encl)
	}
	sort.Slice(encls, func(i, j int) bool { return pos(encls[i]) < pos(encls[j]) })

	var res Result
	for _, encl := range encls {
		f := g.FuncFor(encl)
		if f == nil || f.Body == nil {
			continue
		}
		c := cfg.New(f.Body)
		for _, gs := range sites[encl] {
			sp := a.audit(f, c, gs)
			if !sp.OK {
				pass.Reportf(gs.Pos(), "unjoined goroutine in %s: %s", sp.Func, sp.Join)
				sp.Join = ""
			}
			res.Spawns = append(res.Spawns, sp)
		}
	}
	sort.Slice(res.Spawns, func(i, j int) bool {
		x, y := res.Spawns[i], res.Spawns[j]
		if x.Pos.Filename != y.Pos.Filename {
			return x.Pos.Filename < y.Pos.Filename
		}
		return x.Pos.Offset < y.Pos.Offset
	})
	return res, nil
}

func pos(n ast.Node) token.Pos {
	if n == nil {
		return token.NoPos
	}
	return n.Pos()
}

type auditor struct {
	pass  *analysis.Pass
	g     *callgraph.Graph
	files []*ast.File
}

// audit resolves and verifies the join obligation of one go statement.
// When the spawn fails, the failure explanation is returned in Join (the
// caller reports it and clears the field).
func (a *auditor) audit(f *callgraph.Func, c *cfg.CFG, gs *ast.GoStmt) Spawn {
	info := a.pass.TypesInfo
	sp := Spawn{Pos: a.pass.Fset.Position(gs.Pos()), Func: f.Name, Obligation: "none"}

	body, mapParam, ok := conc.SpawnTarget(info, a.g, gs)
	if !ok {
		sp.Join = "spawned function is not statically resolvable, so no join obligation can be verified"
		return sp
	}

	// Obligation 1: WaitGroup Done in the spawned body.
	if obj := firstWaitGroupDone(info, body); obj != nil {
		sp.Obligation = "waitgroup"
		obj = mapParam(obj)
		if obj == nil {
			sp.Join = "goroutine calls Done on a WaitGroup the spawner cannot name"
			return sp
		}
		sp.On = conc.ObjName(a.pass.Pkg, f.Name, obj)
		if !a.addReachesSpawn(f, c, gs, obj) {
			sp.Join = fmt.Sprintf("goroutine calls Done on %s but no %s.Add reaches the spawn", sp.On, obj.Name())
			return sp
		}
		return a.verifyJoin(sp, f, c, gs, obj,
			func(n ast.Node) bool { return conc.WaitsOn(info, n, obj) },
			func(o types.Object, n ast.Node) bool {
				oo, m, ok := conc.WaitGroupCall(info, n)
				return ok && m == "Wait" && oo == o
			},
			"Wait")
	}

	// Obligation 2: the spawned body sends on a channel; join by receive.
	if obj := firstChanSend(info, body); obj != nil {
		sp.Obligation = "channel-recv"
		obj = mapParam(obj)
		if obj == nil {
			sp.Join = "goroutine sends on a channel the spawner cannot name"
			return sp
		}
		sp.On = conc.ObjName(a.pass.Pkg, f.Name, obj)
		return a.verifyJoin(sp, f, c, gs, obj,
			func(n ast.Node) bool { return conc.RecvsFrom(info, n, obj) },
			exactRecv(info),
			"receive")
	}

	// Obligation 3: the spawned body ranges over a channel; join by close.
	if obj := firstChanRange(info, body); obj != nil {
		sp.Obligation = "channel-range"
		obj = mapParam(obj)
		if obj == nil {
			sp.Join = "goroutine ranges over a channel the spawner cannot name"
			return sp
		}
		sp.On = conc.ObjName(a.pass.Pkg, f.Name, obj)
		return a.verifyJoin(sp, f, c, gs, obj,
			func(n ast.Node) bool { return conc.Closes(info, n, obj) },
			func(o types.Object, n ast.Node) bool {
				call, ok := conc.BuiltinCall(info, n, "close")
				return ok && len(call.Args) == 1 && conc.BaseObj(info, call.Args[0]) == o
			},
			"close")
	}

	sp.Join = "no join obligation in spawned body (no WaitGroup Done, channel send, or channel range)"
	return sp
}

// verifyJoin applies the local/field join rule: a struct-field obligation
// (or a local published into a field) is satisfied by a joining node
// anywhere in the package; a local one must be hit on every CFG exit path
// of the spawner after the spawn, or by a defer registered before it.
// hit tests containment (a CFG node whose subtree joins); exact tests a
// single precise AST node, which the package-wide walk needs to attribute
// the join to its enclosing function.
func (a *auditor) verifyJoin(sp Spawn, f *callgraph.Func, c *cfg.CFG, gs *ast.GoStmt,
	obj types.Object, hit func(ast.Node) bool, exact func(types.Object, ast.Node) bool, verb string) Spawn {

	if conc.IsField(obj) {
		if fn := a.packageWide(func(n ast.Node) bool { return exact(obj, n) }); fn != "" {
			sp.Join = verb + " in " + fn
			sp.OK = true
			return sp
		}
		sp.Join = fmt.Sprintf("no %s on %s anywhere in the package", verb, sp.On)
		return sp
	}
	if c.EveryPathHits(gs, hit) {
		sp.Join = verb + " on every exit path of " + f.Name
		sp.OK = true
		return sp
	}
	for _, d := range c.Defers {
		if hit(d) && c.Reaches(d, gs) {
			sp.Join = verb + " deferred before spawn in " + f.Name
			sp.OK = true
			return sp
		}
	}
	if alias := conc.FieldAlias(a.pass.TypesInfo, f.Body, obj); alias != nil {
		aliasName := conc.ObjName(a.pass.Pkg, f.Name, alias)
		if fn := a.packageWide(func(n ast.Node) bool { return exact(alias, n) }); fn != "" {
			sp.On = sp.On + " (published as " + aliasName + ")"
			sp.Join = verb + " in " + fn
			sp.OK = true
			return sp
		}
	}
	sp.Join = fmt.Sprintf("%s on %s is not guaranteed on every exit path of %s", verb, sp.On, f.Name)
	return sp
}

// addReachesSpawn checks the Add half of the WaitGroup balance: some
// X.Add must flow into the spawn site (same function, reachable before
// the go statement). Field WaitGroups follow the same rule — the repo
// idiom puts Add next to the spawn even when Wait lives elsewhere.
func (a *auditor) addReachesSpawn(f *callgraph.Func, c *cfg.CFG, gs *ast.GoStmt, obj types.Object) bool {
	info := a.pass.TypesInfo
	isAdd := func(n ast.Node) bool {
		return conc.ContainsShallow(n, func(x ast.Node) bool {
			o, m, ok := conc.WaitGroupCall(info, x)
			return ok && m == "Add" && o == obj
		})
	}
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if n == gs || !isAdd(n) {
				continue
			}
			if c.Reaches(n, gs) {
				return true
			}
		}
	}
	return false
}

// packageWide scans every function in the package (nested literals
// included) for a node matching pred, returning the name of the first
// containing function, or "".
func (a *auditor) packageWide(pred func(ast.Node) bool) string {
	found := ""
	analysis.WithStack(a.files, func(n ast.Node, stack []ast.Node) bool {
		if found != "" {
			return false
		}
		if pred(n) {
			if f := a.g.FuncFor(analysis.EnclosingFunc(stack)); f != nil {
				found = f.Name
			} else {
				found = "package scope"
			}
			return false
		}
		// Descend everywhere: a join owned by another function is the
		// point of the package-wide rule.
		return true
	})
	return found
}

// exactRecv matches a single AST node that receives from or ranges over
// the channel o.
func exactRecv(info *types.Info) func(types.Object, ast.Node) bool {
	return func(o types.Object, n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			return x.Op == token.ARROW && conc.BaseObj(info, x.X) == o
		case *ast.RangeStmt:
			return conc.BaseObj(info, x.X) == o
		}
		return false
	}
}

// firstWaitGroupDone returns the WaitGroup object of the first X.Done()
// in the shallow body (defers included), or nil.
func firstWaitGroupDone(info *types.Info, body ast.Node) types.Object {
	var obj types.Object
	conc.Shallow(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if o, m, ok := conc.WaitGroupCall(info, n); ok && m == "Done" {
			obj = o
			return false
		}
		return true
	})
	return obj
}

// firstChanSend returns the channel object of the first send statement in
// the shallow body, or nil.
func firstChanSend(info *types.Info, body ast.Node) types.Object {
	var obj types.Object
	conc.Shallow(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if s, ok := n.(*ast.SendStmt); ok {
			obj = conc.BaseObj(info, s.Chan)
			return false
		}
		return true
	})
	return obj
}

// firstChanRange returns the channel object the shallow body ranges over,
// or nil.
func firstChanRange(info *types.Info, body ast.Node) types.Object {
	var obj types.Object
	conc.Shallow(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if r, ok := n.(*ast.RangeStmt); ok {
			if tv, tok := info.Types[r.X]; tok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					obj = conc.BaseObj(info, r.X)
					return false
				}
			}
		}
		return true
	})
	return obj
}

