// Package maporderfix is a deliberately-bad fixture for the maporder
// analyzer: appends and output in randomized map order, next to the
// sanctioned collect-then-sort and per-key-bucketing idioms.
package maporderfix

import (
	"fmt"
	"io"
	"sort"
)

func unsortedAppend(counts map[string]int) []string {
	var rows []string
	for k := range counts {
		rows = append(rows, k) // want `append to rows inside range over map`
	}
	return rows
}

func sortedAppendOK(counts map[string]int) []string {
	var rows []string
	for k := range counts {
		rows = append(rows, k) // sorted below: deterministic
	}
	sort.Strings(rows)
	return rows
}

func sortSliceOK(counts map[string]int) []int {
	var rows []int
	for _, v := range counts {
		rows = append(rows, v)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

func printOutput(w io.Writer, counts map[string]int) {
	for k, v := range counts {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over map`
	}
}

func errorFromKey(opts map[string]int) error {
	for k := range opts {
		return fmt.Errorf("unknown option %q", k) // want `fmt.Errorf inside range over map`
	}
	return nil
}

func bucketingOK(src map[string][]int) map[string][]int {
	dst := make(map[string][]int)
	for k, vs := range src {
		dst[k] = append(dst[k], vs...) // keyed by the range key: each key once
	}
	return dst
}

func localAccumulationOK(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		peers := []int{}
		peers = append(peers, v) // local to the body: order invisible outside
		total += peers[0]
	}
	return total
}

func suppressedAppend(counts map[string]int) []string {
	var rows []string
	for k := range counts {
		//simlint:ignore maporder caller renders rows as a set
		rows = append(rows, k)
	}
	return rows
}
