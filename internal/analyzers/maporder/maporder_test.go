package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers/maporder"
)

func TestMaporderFixture(t *testing.T) {
	findings := analysistest.Run(t, maporder.Analyzer, analysistest.TestData(t), "maporder")
	if len(findings) < 3 {
		t.Fatalf("maporder reported %d findings on the bad fixture, want >= 3", len(findings))
	}
}
