// Package maporder flags range statements over maps whose body order
// becomes observable — appending to an outer slice, writing output, or
// building an error — without the appended data being sorted afterwards.
// Go randomizes map iteration order on purpose, which makes it the
// classic silent determinism killer: code works every time locally and
// produces row orders that differ across runs or machines.
//
// Order-insensitive uses are exempt: writes keyed by the range key
// (per-key bucketing such as merge loops), commutative accumulation
// (+= on numbers, writes into other maps), and appends whose target is
// sorted later in the same function.
package maporder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analyzers/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose order reaches a slice, output stream or error without a sort; " +
		"map order is randomized and silently breaks run-to-run determinism",
	Run: run,
}

// outputFuncs are fmt functions that emit in call order: interleaving map
// iteration with them bakes the random order into the output. The Sprint
// family is excluded — a string built per iteration and stored by key is
// order-insensitive.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Errorf": true, "Appendf": true,
}

func run(pass *analysis.Pass) (any, error) {
	files := astq.LibFiles(pass.Fset, pass.Files)
	analysis.WithStack(files, func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		checkRange(pass, rng, stack)
		return true
	})
	return nil, nil
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	info := pass.TypesInfo
	keyObj := astq.AssignedObject(info, rng.Key)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if app := appendTarget(info, st); app != nil {
				if keyedByRangeKey(info, app.index, keyObj) {
					return true // per-key bucketing: each key visited once
				}
				if declaredInside(app.obj, rng) {
					return true // local accumulation, order invisible outside
				}
				if sortedLater(pass, rng, stack, app.obj) {
					return true
				}
				name := "slice"
				if app.obj != nil {
					name = app.obj.Name()
				}
				pass.Reportf(st.Pos(),
					"append to %s inside range over map: element order follows the randomized map order; iterate sorted keys or sort %s before it is used", name, name)
			}
		case *ast.CallExpr:
			if path, name, ok := astq.PkgCall(info, st); ok && path == "fmt" && outputFuncs[name] {
				pass.Reportf(st.Pos(),
					"fmt.%s inside range over map emits in randomized map order; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

type appendInfo struct {
	obj   types.Object // the appended variable (nil if not an identifier)
	index ast.Expr     // index expression when the target is m[k], else nil
}

// appendTarget recognizes `x = append(x, ...)` / `m[k] = append(m[k], ...)`
// and returns the written target.
func appendTarget(info *types.Info, st *ast.AssignStmt) *appendInfo {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return nil
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || info.ObjectOf(id) != nil && info.ObjectOf(id).Pkg() != nil {
		return nil
	}
	switch lhs := st.Lhs[0].(type) {
	case *ast.Ident:
		return &appendInfo{obj: info.ObjectOf(lhs)}
	case *ast.IndexExpr:
		if base, ok := lhs.X.(*ast.Ident); ok {
			return &appendInfo{obj: info.ObjectOf(base), index: lhs.Index}
		}
		return &appendInfo{index: lhs.Index}
	}
	return nil
}

func keyedByRangeKey(info *types.Info, index ast.Expr, keyObj types.Object) bool {
	return index != nil && keyObj != nil && astq.MentionsObject(info, index, keyObj)
}

func declaredInside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// sortedLater reports whether obj is passed to a sort call in a statement
// after the range, anywhere up the enclosing blocks: the established
// collect-then-sort idiom keeps the final order deterministic.
func sortedLater(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	fn := analysis.EnclosingFunc(stack)
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		path, name, ok := astq.PkgCall(pass.TypesInfo, call)
		if !ok {
			return true
		}
		isSort := path == "sort" || path == "slices" && (name == "Sort" || name == "SortFunc" || name == "SortStableFunc")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if astq.MentionsObject(pass.TypesInfo, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
