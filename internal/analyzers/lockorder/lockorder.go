// Package lockorder builds the mutex-acquisition-order graph of a
// package and proves it acyclic — the Dally–Seitz argument applied to
// the repository's own locks. Vertices are static lock identities (a
// struct field abstracts every instance, exactly as a CDG vertex
// abstracts every packet in a channel); an edge A -> B records that B is
// acquired somewhere while A is held, either directly or through a
// statically resolved intra-package call. A cycle in this graph is a
// potential deadlock and is reported with a minimal counterexample
// cycle, in the same shape fabricver prints a CDG cycle.
//
// The analysis is a may-held forward dataflow over the internal/analysis
// CFGs: block-entry held-sets merge by union, Lock/RLock adds, explicit
// Unlock/RUnlock removes, deferred unlocks keep the lock held to
// function exit (correct for ordering: the lock IS held for the rest of
// the function). Calls through function values or into other packages
// are treated as acquiring nothing — the conservative-quiet choice,
// documented here; the cross-package picture is assembled by the code
// certificate, which merges every package's edges into one graph.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analyzers/astq"
	"repro/internal/analyzers/conc"
	"repro/internal/graph"
)

// Edge is one acquisition-order edge: To acquired while From is held, at
// Pos (the position of the acquiring call).
type Edge struct {
	From, To string
	Pos      token.Position
}

// Result is the per-package slice of the global lock-order graph,
// exported for the code certificate: sorted lock names and sorted,
// deduplicated edges.
type Result struct {
	Locks []string
	Edges []Edge
}

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "prove the mutex-acquisition-order graph acyclic, like a channel-dependency graph; " +
		"an edge A->B means B is acquired while A is held, and any cycle admits deadlock — " +
		"report it with a minimal counterexample cycle",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !conc.InScope(pass.Pkg.Path()) {
		return Result{}, nil
	}
	files := astq.LibFiles(pass.Fset, pass.Files)
	g := callgraph.Build(pass.TypesInfo, files)

	a := &scanner{
		pass:  pass,
		g:     g,
		name:  map[types.Object]string{},
		trans: map[*callgraph.Func]map[types.Object]bool{},
		edges: map[[2]types.Object]token.Pos{},
	}
	a.collectAcquires()
	for _, f := range g.Funcs {
		a.scanFunc(f)
	}
	res := a.result()
	a.reportCycles(res)
	return res, nil
}

type scanner struct {
	pass *analysis.Pass
	g    *callgraph.Graph
	// name is the display name of each lock object seen acquired.
	name map[types.Object]string
	// trans maps each function to the locks it (or any statically
	// reachable intra-package callee, including nested literals) may
	// acquire.
	trans map[*callgraph.Func]map[types.Object]bool
	// edges holds the first acquisition site of each ordered lock pair.
	edges map[[2]types.Object]token.Pos
}

// collectAcquires computes the direct acquire-set of every function and
// closes it transitively over the call graph.
func (a *scanner) collectAcquires() {
	info := a.pass.TypesInfo
	for _, f := range a.g.Funcs {
		set := map[types.Object]bool{}
		if f.Body != nil {
			conc.Shallow(f.Body, func(n ast.Node) bool {
				if obj, m, ok := conc.LockCall(info, n); ok && (m == "Lock" || m == "RLock") && obj != nil {
					set[obj] = true
					if _, seen := a.name[obj]; !seen {
						a.name[obj] = conc.ObjName(a.pass.Pkg, f.Name, obj)
					}
				}
				return true
			})
		}
		a.trans[f] = set
	}
	for changed := true; changed; {
		changed = false
		for _, f := range a.g.Funcs {
			for _, callee := range f.Callees {
				for obj := range a.trans[callee] {
					if !a.trans[f][obj] {
						a.trans[f][obj] = true
						changed = true
					}
				}
			}
		}
	}
}

// scanFunc runs the may-held dataflow over one function's CFG and
// records acquisition-order edges.
func (a *scanner) scanFunc(f *callgraph.Func) {
	if f.Body == nil {
		return
	}
	// Fast path: a function that neither locks nor reaches a lock
	// contributes no edges.
	if len(a.trans[f]) == 0 {
		return
	}
	c := cfg.New(f.Body)
	in := make([]map[types.Object]bool, len(c.Blocks))
	for i := range in {
		in[i] = map[types.Object]bool{}
	}
	// Fixpoint: propagate may-held sets block to block.
	for changed := true; changed; {
		changed = false
		for _, blk := range c.Blocks {
			held := copySet(in[blk.Index])
			for _, n := range blk.Nodes {
				a.applyNode(n, held, false)
			}
			for _, succ := range blk.Succs {
				for obj := range held {
					if !in[succ.Index][obj] {
						in[succ.Index][obj] = true
						changed = true
					}
				}
			}
		}
	}
	// Final pass: record edges using the converged entry sets.
	for _, blk := range c.Blocks {
		held := copySet(in[blk.Index])
		for _, n := range blk.Nodes {
			a.applyNode(n, held, true)
		}
	}
}

// applyNode updates the held-set across one CFG node and, when record is
// set, emits acquisition-order edges.
func (a *scanner) applyNode(n ast.Node, held map[types.Object]bool, record bool) {
	info := a.pass.TypesInfo
	if d, ok := n.(*ast.DeferStmt); ok {
		if obj, m, ok := conc.LockCall(info, d.Call); ok {
			// defer X.Unlock(): X stays held to function exit, which the
			// untouched held-set models. defer X.Lock() is nonsense;
			// ignore both rather than guess.
			_, _ = obj, m
			return
		}
		// A deferred ordinary call runs at exit, where the held-set is at
		// most the current one plus later acquisitions; approximating
		// with the current set keeps the edge direction sound for the
		// deferred-unlock idiom this repo uses.
		a.applyCallLike(d.Call, held, record)
		return
	}
	conc.Shallow(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// Not reached: conc.Shallow prunes literals. Edges into a
			// literal's acquisitions come from the call-graph link when
			// the literal is invoked.
			return false
		case *ast.CallExpr:
			a.applyCallLike(x, held, record)
		}
		return true
	})
}

func (a *scanner) applyCallLike(call *ast.CallExpr, held map[types.Object]bool, record bool) {
	info := a.pass.TypesInfo
	if obj, m, ok := conc.LockCall(info, call); ok && obj != nil {
		switch m {
		case "Lock", "RLock":
			if record {
				a.crossEdges(held, map[types.Object]bool{obj: true}, call.Pos())
			}
			held[obj] = true
		case "Unlock", "RUnlock":
			delete(held, obj)
		}
		return
	}
	if callee := a.g.StaticCallee(info, call); callee != nil {
		if record {
			a.crossEdges(held, a.trans[callee], call.Pos())
		}
	}
}

// crossEdges records held × acquired edges, keeping the first site per
// ordered pair. Recursive re-acquisition (held contains the acquired
// lock) records a self-edge — a cycle of length one.
func (a *scanner) crossEdges(held, acquired map[types.Object]bool, pos token.Pos) {
	for h := range held {
		for acq := range acquired {
			key := [2]types.Object{h, acq}
			if _, ok := a.edges[key]; !ok {
				a.edges[key] = pos
			}
		}
	}
}

// result renders the sorted lock list and edge list.
func (a *scanner) result() Result {
	var res Result
	for _, name := range a.name {
		res.Locks = append(res.Locks, name)
	}
	sort.Strings(res.Locks)
	for key, pos := range a.edges {
		res.Edges = append(res.Edges, Edge{
			From: a.name[key[0]],
			To:   a.name[key[1]],
			Pos:  a.pass.Fset.Position(pos),
		})
	}
	sort.Slice(res.Edges, func(i, j int) bool {
		x, y := res.Edges[i], res.Edges[j]
		if x.From != y.From {
			return x.From < y.From
		}
		if x.To != y.To {
			return x.To < y.To
		}
		return x.Pos.Offset < y.Pos.Offset
	})
	return res
}

// reportCycles proves the package graph acyclic or reports every edge
// that participates in a cycle, each with a minimal cycle through it.
func (a *scanner) reportCycles(res Result) {
	if len(res.Edges) == 0 {
		return
	}
	dg, index := BuildGraph(res.Locks, res.Edges)
	if _, cyclic := dg.ShortestCycle(); !cyclic {
		return
	}
	// Re-find each edge's position for reporting.
	for _, e := range res.Edges {
		u, v := index[e.From], index[e.To]
		cycle, ok := dg.CycleThrough(u, v)
		if !ok {
			continue
		}
		names := make([]string, 0, len(cycle)+1)
		for _, w := range cycle {
			names = append(names, res.Locks[w])
		}
		names = append(names, res.Locks[cycle[0]])
		pos := a.findEdgePos(e)
		if e.From == e.To {
			a.pass.Reportf(pos,
				"recursive acquisition of %s: self-cycle in the lock-order graph (a second Lock on a held mutex deadlocks)", e.From)
			continue
		}
		a.pass.Reportf(pos,
			"lock-order cycle: %s — acquiring %s while holding %s admits deadlock, exactly as a cyclic channel-dependency graph does",
			strings.Join(names, " -> "), e.To, e.From)
	}
}

func (a *scanner) findEdgePos(e Edge) token.Pos {
	for key, pos := range a.edges {
		if a.name[key[0]] == e.From && a.name[key[1]] == e.To {
			return pos
		}
	}
	return token.NoPos
}

// BuildGraph assembles a graph.Digraph over the lock vertices; shared
// with the code certificate, which merges edges from every package and
// re-runs the same acyclicity proof globally.
func BuildGraph(locks []string, edges []Edge) (*graph.Digraph, map[string]int) {
	index := make(map[string]int, len(locks))
	for i, name := range locks {
		index[name] = i
	}
	dg := graph.NewDigraph(len(locks))
	seen := map[[2]int]bool{}
	for _, e := range edges {
		u, okU := index[e.From]
		v, okV := index[e.To]
		if !okU || !okV || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		dg.AddEdge(u, v)
	}
	return dg, index
}

func copySet(s map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
