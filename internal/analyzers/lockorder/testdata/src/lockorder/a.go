// Fixture for the lockorder analyzer: a deliberate two-lock cycle split
// across two files (the closing edge lives in b.go), a recursive
// self-acquisition through a helper call, and a consistently ordered
// pair that must stay silent.
package lockorder

import "sync"

type server struct {
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
}

// ab acquires a then b: one direction of the cycle. The closing b->a
// edge is in b.go, so the cycle is only visible on the package graph.
func (s *server) ab() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want `lock-order cycle: lockorder.server.a -> lockorder.server.b -> lockorder.server.a`
	defer s.b.Unlock()
}

// recur calls a helper that re-acquires the mutex recur already holds: a
// self-edge, the one-vertex cycle.
func (s *server) recur() {
	s.c.Lock()
	s.helper() // want `recursive acquisition of lockorder.server.c`
	s.c.Unlock()
}

func (s *server) helper() {
	s.c.Lock()
	defer s.c.Unlock()
}

type ordered struct {
	d sync.Mutex
	e sync.Mutex
}

// de acquires d then e and nothing acquires them the other way: a clean
// edge that must produce no diagnostic.
func (o *ordered) de() {
	o.d.Lock()
	defer o.d.Unlock()
	o.e.Lock()
	o.e.Unlock()
}
