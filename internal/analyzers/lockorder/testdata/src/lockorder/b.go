package lockorder

// ba closes the cycle from a.go: it holds b and acquires a through a
// call, so the edge comes from the interprocedural acquire-set, not a
// literal Lock under the held region.
func (s *server) ba() {
	s.b.Lock()
	defer s.b.Unlock()
	s.lockA() // want `lock-order cycle: lockorder.server.b -> lockorder.server.a -> lockorder.server.b`
}

func (s *server) lockA() {
	s.a.Lock()
	defer s.a.Unlock()
}
