package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers/lockorder"
)

func TestLockorderFixture(t *testing.T) {
	findings := analysistest.Run(t, lockorder.Analyzer, analysistest.TestData(t), "lockorder")
	// Regression guard: an analyzer that silently stops reporting would
	// otherwise pass a fixture with no want comments left.
	if len(findings) < 3 {
		t.Fatalf("lockorder reported %d findings on the bad fixture, want >= 3", len(findings))
	}
}
