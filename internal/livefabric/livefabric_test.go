// Structural validation of the live backend against the two oracles the
// repo already trusts: the indexed engine (delivered-set equivalence on
// every BuiltinSpecs pair) and the static Dally–Seitz certificate (a run
// blocks permanently iff the CDG has a cycle). Run under -race at
// GOMAXPROCS 1, 2, and 4 by the livefabric CI job; when a deadlock
// assertion fails, the witness is dumped as JSON into
// $LIVEFABRIC_WITNESS_DIR for artifact upload.
package livefabric_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/livefabric"
	"repro/internal/sim"
	"repro/internal/workload"
)

// buildSystem parses one registry spec or fails the test.
func buildSystem(t *testing.T, spec string) *core.System {
	t.Helper()
	sys, _, err := core.ParseSystem(spec)
	if err != nil {
		t.Fatalf("ParseSystem(%q): %v", spec, err)
	}
	return sys
}

// uniformLoad is the shared workload for the equivalence sweep: a
// seeded uniform-random set, two packets per node, all injectable at
// once — enough contention to exercise arbitration on every pair.
func uniformLoad(sys *core.System, seed int64) []sim.PacketSpec {
	n := sys.Net.NumNodes()
	return workload.UniformRandom(rand.New(rand.NewSource(seed)), n, 2*n, 4, 0)
}

// specKey is the delivered-set element: packet identity up to the
// fields both engines share.
func specKey(p sim.PacketSpec) string {
	return fmt.Sprintf("%d->%d/%dfl@%d", p.Src, p.Dst, p.Flits, p.InjectCycle)
}

// runIndexed executes the reference engine and returns its result plus
// the sorted multiset of delivered packet specs.
func runIndexed(t *testing.T, sys *core.System, specs []sim.PacketSpec, cfg sim.Config) (sim.Result, []string) {
	t.Helper()
	s := sim.New(sys.Net, sys.Disables, cfg)
	var delivered []string
	s.OnDelivered(func(spec sim.PacketSpec, now int) {
		delivered = append(delivered, specKey(spec))
	})
	if err := s.AddBatch(sys.Tables, specs); err != nil {
		t.Fatalf("indexed AddBatch: %v", err)
	}
	res := s.Run()
	sort.Strings(delivered)
	return res, delivered
}

// runLive executes the concurrent backend and returns its result plus
// the sorted multiset of delivered packet specs.
func runLive(t *testing.T, sys *core.System, specs []sim.PacketSpec, cfg livefabric.Config) (livefabric.Result, []string) {
	t.Helper()
	f := livefabric.New(sys.Net, sys.Disables, cfg)
	if err := f.AddBatch(sys.Tables, specs); err != nil {
		t.Fatalf("live AddBatch: %v", err)
	}
	res := f.Run(context.Background())
	delivered := make([]string, 0, len(res.DeliveredIDs))
	for _, id := range res.DeliveredIDs {
		delivered = append(delivered, specKey(specs[id]))
	}
	sort.Strings(delivered)
	return res, delivered
}

// dumpWitness writes the run's deadlock witness (or its absence) to
// $LIVEFABRIC_WITNESS_DIR so a failing CI run uploads the evidence.
func dumpWitness(t *testing.T, spec string, res livefabric.Result) {
	t.Helper()
	dir := os.Getenv("LIVEFABRIC_WITNESS_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("witness dir: %v", err)
		return
	}
	b, err := json.MarshalIndent(map[string]any{
		"spec":       spec,
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"deadlocked": res.Deadlocked,
		"witness":    res.Witness,
		"delivered":  res.Delivered,
		"dropped":    res.Dropped,
		"injected":   res.Injected,
	}, "", "  ")
	if err != nil {
		t.Logf("witness marshal: %v", err)
		return
	}
	name := strings.NewReplacer(":", "_", ",", "_", "=", "-").Replace(spec)
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Logf("witness write: %v", err)
		return
	}
	t.Logf("witness written to %s", path)
}

// TestDeliveredSetMatchesIndexed is robustness property (1), first
// half: for every certified builtin pair the live backend delivers
// exactly the packet set the indexed engine delivers — same multiset of
// (src, dst, flits) identities, nothing dropped, nothing deadlocked,
// in-order per pair — under real scheduler nondeterminism.
func TestDeliveredSetMatchesIndexed(t *testing.T) {
	for i, spec := range core.BuiltinSpecs() {
		t.Run(spec, func(t *testing.T) {
			sys := buildSystem(t, spec)
			specs := uniformLoad(sys, int64(i+1))
			numVC := sys.Tables.NumVC()

			iRes, iSet := runIndexed(t, sys, specs, sim.Config{FIFODepth: 4, VirtualChannels: numVC})
			lRes, lSet := runLive(t, sys, specs, livefabric.Config{FIFODepth: 4, VirtualChannels: numVC})

			if iRes.Deadlocked || iRes.Dropped != 0 || iRes.Delivered != len(specs) {
				t.Fatalf("indexed oracle unhealthy: %+v", iRes)
			}
			if lRes.Deadlocked {
				dumpWitness(t, spec, lRes)
				t.Fatalf("live backend deadlocked on certified pair: witness %v", lRes.Witness)
			}
			if lRes.Dropped != 0 || lRes.Canceled {
				t.Fatalf("live backend dropped=%d canceled=%v on fault-free run", lRes.Dropped, lRes.Canceled)
			}
			if lRes.InOrderViolations != 0 {
				t.Fatalf("live backend reordered %d packets", lRes.InOrderViolations)
			}
			if len(iSet) != len(lSet) {
				t.Fatalf("delivered counts differ: indexed %d, live %d", len(iSet), len(lSet))
			}
			for j := range iSet {
				if iSet[j] != lSet[j] {
					t.Fatalf("delivered sets differ at %d: indexed %s, live %s", j, iSet[j], lSet[j])
				}
			}
		})
	}
}

// TestDeadlockIffCertificate is robustness property (1), second half —
// the iff. Certified pairs (CDG acyclic) must always drain; the
// deliberately unsafe rings (CDG cycle) must wedge under the Figure 1
// circular-wait workload, with long worms so the headers claim the full
// ring of buffers before any tail can release one, and the watchdog
// must name a genuine wait cycle.
func TestDeadlockIffCertificate(t *testing.T) {
	// Certified side: certificate free, live run drains.
	for i, spec := range core.BuiltinSpecs() {
		t.Run(spec, func(t *testing.T) {
			sys := buildSystem(t, spec)
			rep, err := deadlock.Analyze(sys.Tables)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if !rep.Free {
				t.Fatalf("registry pair lost its certificate: cycle %v", rep.Cycle)
			}
			res, _ := runLive(t, sys, uniformLoad(sys, int64(100+i)),
				livefabric.Config{FIFODepth: 2, VirtualChannels: sys.Tables.NumVC()})
			if res.Deadlocked {
				dumpWitness(t, spec, res)
				t.Fatalf("certified pair deadlocked live: witness %v", res.Witness)
			}
			if res.Delivered+res.Dropped != len(res.DeliveredIDs)+len(res.DroppedIDs) || res.Delivered == 0 {
				t.Fatalf("inconsistent result: %+v", res)
			}
		})
	}
	// Unsafe side: certificate cycle, live run wedges with a witness.
	for _, spec := range []string{"ring:size=4,unsafe", "ring:size=6,unsafe"} {
		t.Run(spec, func(t *testing.T) {
			sys := buildSystem(t, spec)
			rep, err := deadlock.Analyze(sys.Tables)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if rep.Free {
				t.Fatalf("unsafe ring analyzed free")
			}
			pairs := workload.RingDeadlockSet(sys.Net.NumNodes())
			var specs []sim.PacketSpec
			for r := 0; r < 8; r++ {
				specs = append(specs, workload.Transfers(pairs, 64)...)
			}
			// The wire delay paces every worm, so all of them are in
			// flight at once no matter how fast the scheduler runs a
			// single goroutine chain — the circular wait cannot be dodged
			// by one worm streaming to completion before the rest start.
			f := livefabric.New(sys.Net, sys.Disables,
				livefabric.Config{FIFODepth: 2, Epoch: 5 * time.Millisecond,
					LinkDelay: 200 * time.Microsecond})
			if err := f.AddBatch(sys.Tables, specs); err != nil {
				t.Fatalf("AddBatch: %v", err)
			}
			res := f.Run(context.Background())
			dumpWitness(t, spec, res)
			if !res.Deadlocked {
				t.Fatalf("unsafe ring did not deadlock: %+v", res)
			}
			if len(res.WaitCycle) < 2 || len(res.Witness) != len(res.WaitCycle) {
				t.Fatalf("degenerate witness: cycle %v, witness %v", res.WaitCycle, res.Witness)
			}
			seen := map[string]bool{}
			for j, w := range res.Witness {
				if w == "" || seen[w] {
					t.Fatalf("witness entry %d (%q) empty or repeated in %v", j, w, res.Witness)
				}
				seen[w] = true
				if int(res.WaitCycle[j]) >= sys.Net.NumChannels() {
					t.Fatalf("witness channel %d out of range", res.WaitCycle[j])
				}
			}
		})
	}
}

// TestEquivalenceAcrossGOMAXPROCS re-proves the core property at P=1,
// 2, and 4 inside one test binary, so the scheduler-width matrix holds
// even when CI's env-matrix job is not the one running.
func TestEquivalenceAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			sys := buildSystem(t, "fat-fract:levels=2")
			specs := uniformLoad(sys, int64(procs))
			numVC := sys.Tables.NumVC()
			_, iSet := runIndexed(t, sys, specs, sim.Config{FIFODepth: 4, VirtualChannels: numVC})
			res, lSet := runLive(t, sys, specs, livefabric.Config{FIFODepth: 4, VirtualChannels: numVC})
			if res.Deadlocked {
				dumpWitness(t, "fat-fract:levels=2", res)
				t.Fatalf("deadlocked at GOMAXPROCS=%d: %v", procs, res.Witness)
			}
			if strings.Join(iSet, ";") != strings.Join(lSet, ";") {
				t.Fatalf("delivered sets diverge at GOMAXPROCS=%d", procs)
			}
		})
	}
}
