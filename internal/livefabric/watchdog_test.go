// Watchdog behavior tests: no false positives on slow-but-progressing
// runs (the live analogue of the indexed engine's
// TestLongLinkNoFalseDeadlock), and a well-formed witness when a real
// wedge happens.
package livefabric_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/livefabric"
	"repro/internal/workload"
)

// TestSlowLinkNoFalseDeadlock drives a certified ring with a wire delay
// more than an order of magnitude above the watchdog epoch. Every epoch
// in which no send completes has a flit mid-wire, so the quiescence
// criterion (no progress AND nothing on a wire) can never hold and the
// run must drain undisturbed, however slowly.
func TestSlowLinkNoFalseDeadlock(t *testing.T) {
	sys := buildSystem(t, "ring:size=4")
	specs := workload.Transfers(workload.RingDeadlockSet(sys.Net.NumNodes()), 2)
	f := livefabric.New(sys.Net, sys.Disables, livefabric.Config{
		FIFODepth:       2,
		VirtualChannels: sys.Tables.NumVC(),
		Epoch:           time.Millisecond,
		LinkDelay:       25 * time.Millisecond,
	})
	if err := f.AddBatch(sys.Tables, specs); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	res := f.Run(context.Background())
	if res.Deadlocked {
		dumpWitness(t, "ring:size=4/slow-link", res)
		t.Fatalf("slow run declared deadlocked: witness %v", res.Witness)
	}
	if res.Delivered != len(specs) || res.Dropped != 0 {
		t.Fatalf("slow run did not drain: %+v", res)
	}
}

// TestWatchdogWitnessIdiom pins the counterexample rendering: one entry
// per wait-cycle edge, formatted like fabricver's channel strings, with
// no VC suffix on a single-lane fabric.
func TestWatchdogWitnessIdiom(t *testing.T) {
	sys := buildSystem(t, "ring:size=4,unsafe")
	var specs = workload.Transfers(workload.RingDeadlockSet(sys.Net.NumNodes()), 64)
	for r := 0; r < 7; r++ {
		specs = append(specs, workload.Transfers(workload.RingDeadlockSet(sys.Net.NumNodes()), 64)...)
	}
	f := livefabric.New(sys.Net, sys.Disables, livefabric.Config{
		FIFODepth: 2,
		Epoch:     5 * time.Millisecond,
		LinkDelay: 200 * time.Microsecond,
	})
	if err := f.AddBatch(sys.Tables, specs); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	res := f.Run(context.Background())
	if !res.Deadlocked {
		t.Fatalf("unsafe ring did not deadlock: %+v", res)
	}
	for _, w := range res.Witness {
		if strings.Contains(w, "vc") {
			t.Fatalf("single-VC fabric witness carries a VC suffix: %q", w)
		}
		if got := sys.Net.ChannelString(res.WaitCycle[0]); !strings.Contains(got, "[") {
			t.Fatalf("channel string idiom changed under the witness: %q", got)
		}
	}
}
