// Robustness property (3): every shutdown path joins every goroutine.
// The four paths — normal drain, context cancellation, watchdog abort,
// and fault injection mid-run — each run under leakcheck, so a router,
// injector, consumer, or watchdog goroutine that outlives Run fails the
// test with its stack attached.
package livefabric_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/livefabric"
	"repro/internal/sim"
	"repro/internal/testutil/leakcheck"
	"repro/internal/workload"
)

// deadlockLoad is the circular-wait workload with worms long enough to
// wedge an unsafe ring: headers claim every buffer on the cycle before
// any tail can release one.
func deadlockLoad(t *testing.T, nodes int) []sim.PacketSpec {
	t.Helper()
	var specs []sim.PacketSpec
	for r := 0; r < 8; r++ {
		specs = append(specs, workload.Transfers(workload.RingDeadlockSet(nodes), 64)...)
	}
	return specs
}

func TestLeakFreeNormalDrain(t *testing.T) {
	base := leakcheck.Baseline()
	sys := buildSystem(t, "hypercube:dim=3")
	specs := uniformLoad(sys, 7)
	f := livefabric.New(sys.Net, sys.Disables,
		livefabric.Config{FIFODepth: 4, VirtualChannels: sys.Tables.NumVC()})
	if err := f.AddBatch(sys.Tables, specs); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if res := f.Run(context.Background()); res.Delivered != len(specs) {
		t.Fatalf("drain incomplete: %+v", res)
	}
	leakcheck.Check(t, base)
}

func TestLeakFreeContextCancel(t *testing.T) {
	base := leakcheck.Baseline()
	sys := buildSystem(t, "ring:size=4,unsafe")
	// A wedging workload with the watchdog held far off, so only the
	// caller's cancellation can end the run. The wire delay keeps every
	// worm in flight together, so the wedge forms on any scheduler.
	f := livefabric.New(sys.Net, sys.Disables,
		livefabric.Config{FIFODepth: 2, Epoch: time.Hour,
			LinkDelay: 200 * time.Microsecond})
	if err := f.AddBatch(sys.Tables, deadlockLoad(t, sys.Net.NumNodes())); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(5*time.Millisecond, cancel)
	defer cancel()
	res := f.Run(ctx)
	if !res.Canceled {
		t.Fatalf("run was not marked canceled: %+v", res)
	}
	leakcheck.Check(t, base)
}

func TestLeakFreeWatchdogAbort(t *testing.T) {
	base := leakcheck.Baseline()
	sys := buildSystem(t, "ring:size=4,unsafe")
	f := livefabric.New(sys.Net, sys.Disables,
		livefabric.Config{FIFODepth: 2, Epoch: 5 * time.Millisecond,
			LinkDelay: 200 * time.Microsecond})
	if err := f.AddBatch(sys.Tables, deadlockLoad(t, sys.Net.NumNodes())); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	res := f.Run(context.Background())
	if !res.Deadlocked {
		t.Fatalf("watchdog never fired: %+v", res)
	}
	leakcheck.Check(t, base)
}

func TestLeakFreeMidRunFault(t *testing.T) {
	base := leakcheck.Baseline()
	sys := buildSystem(t, "fat-fract:levels=2")
	specs := uniformLoad(sys, 11)
	// A small wire delay stretches the run so the kill lands while worms
	// are in flight, not after the drain.
	f := livefabric.New(sys.Net, sys.Disables, livefabric.Config{
		FIFODepth:       2,
		VirtualChannels: sys.Tables.NumVC(),
		LinkDelay:       time.Millisecond,
	})
	if err := f.AddBatch(sys.Tables, specs); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	timer := time.AfterFunc(3*time.Millisecond, func() { f.KillLink(0) })
	defer timer.Stop()
	res := f.Run(context.Background())
	if res.Deadlocked {
		dumpWitness(t, "fat-fract:levels=2/fault", res)
		t.Fatalf("fault wedged a certified fabric: witness %v", res.Witness)
	}
	if res.Delivered+res.Dropped != len(specs) {
		t.Fatalf("fault run lost packets: %+v (want %d accounted)", res, len(specs))
	}
	leakcheck.Check(t, base)
}
