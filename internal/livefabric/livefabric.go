// Package livefabric executes a ServerNet fabric as real concurrency: a
// second backend over the same core.System / workload types as the
// indexed engine (internal/sim), where wormhole flow control is rendered
// directly in Go — each router input buffer is a bounded channel whose
// capacity is the FIFO depth (the multi-lane storage of multistage
// wormhole studies, mapped to channel slack), each buffer is drained by
// its own goroutine, a worm's header allocates the downstream buffer by
// taking its mutex and the tail releases it, and flits advance by real
// channel sends. Backpressure, hold-and-wait and circular blocking are
// therefore the scheduler's, not a simulated clock's: a cyclic channel
// dependency graph deadlocks this backend for real, exactly as the
// Dally–Seitz argument predicts, and an acyclic certificate (fabricver)
// must keep it live under any interleaving.
//
// The engine is intentionally NOT deterministic — delivery interleaving
// is the scheduler's — so it reports only schedule-independent facts:
// which packets were delivered or dropped, whether the run deadlocked,
// and a wait-for-cycle witness when it did. The deterministic clockwork
// stays in internal/sim; this backend exists to validate the repo's
// safety claims under real nondeterminism:
//
//   - delivered-set equivalence: for every certified topology × routing
//     pair the delivered packet set equals the indexed engine's;
//   - deadlock iff certificate cycle: a run blocks permanently exactly
//     when the static CDG certificate reports a cycle, and the runtime
//     witness (watchdog.go) names channels on such a cycle;
//   - leak freedom: every shutdown path — drain, context cancellation,
//     watchdog abort, mid-run fault — joins every goroutine on the
//     fabric WaitGroup (the shape the goleak/chanwait certificate
//     proves, and internal/testutil/leakcheck re-proves dynamically).
//
// Every potentially blocking channel operation pairs with the abort
// channel in a select, so cancellation releases every goroutine: a
// parked mutex waiter is released transitively, because the holder's
// own blocking send aborts and its deferred unlock runs.
package livefabric

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config sizes the live fabric. Zero values select the indexed engine's
// defaults, so the two backends agree on buffering out of the box.
type Config struct {
	// FIFODepth is the bounded-channel capacity per input buffer, per
	// virtual channel, in flits (default 4) — the exact analogue of the
	// indexed engine's per-VC FIFO depth.
	FIFODepth int
	// VirtualChannels is the VC count per physical channel (default 1).
	// Use routing.Tables.NumVC() to match a VC-assigned routing.
	VirtualChannels int
	// Epoch is the watchdog sampling period (default 20ms). A run that
	// makes no send/receive progress for a full epoch, with no flit on a
	// wire, is inspected for a wait-for cycle.
	Epoch time.Duration
	// LinkDelay is an optional per-flit wire-crossing time. It models
	// LinkLatency (long cables) in wall-clock form: flits mid-wire count
	// as progress, so a slow-but-moving run is never declared deadlocked
	// no matter how Epoch compares to the crossing time.
	LinkDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.FIFODepth <= 0 {
		c.FIFODepth = 4
	}
	if c.VirtualChannels <= 0 {
		c.VirtualChannels = 1
	}
	if c.Epoch <= 0 {
		c.Epoch = 20 * time.Millisecond
	}
	return c
}

// Result summarizes one live run. Only schedule-independent facts
// appear: counts and membership, never timing.
type Result struct {
	Injected  int // packets whose tail left the source
	Delivered int // packets whose tail reached the destination
	Dropped   int // packets discarded at a disable violation or dead link

	Deadlocked bool
	// WaitCycle is the witness cycle over physical channels when
	// Deadlocked: each channel's resident worm waits for the next.
	WaitCycle []topology.ChannelID
	// Witness renders the cycle in the fabricver counterexample idiom,
	// one "router → router [vcN]" line per blocked channel.
	Witness []string

	// DeliveredIDs / DroppedIDs are the packet-id sets, sorted — the
	// membership the structural tests compare against the indexed engine.
	DeliveredIDs []int
	DroppedIDs   []int

	InOrderViolations int  // per-(src,dst) sequence regressions observed at ejection
	Canceled          bool // the caller's context expired before the run settled
}

type packet struct {
	id    int
	spec  sim.PacketSpec
	route []topology.ChannelID
	vcs   []int // nil => VC 0 on every hop
	seq   int   // per (src,dst) injection sequence
}

func (p *packet) vcAt(hop int) int {
	if p.vcs == nil {
		return 0
	}
	return p.vcs[hop]
}

// flit is one unit on a wire. hop indexes the route channel just
// crossed, so the receiving buffer's goroutine knows the next turn
// without searching the route.
type flit struct {
	pkt *packet
	idx int // 0 = header, spec.Flits-1 = tail
	hop int
}

// Fabric is one live network instance: build with New, add packets,
// then Run exactly once.
type Fabric struct {
	net *topology.Network
	dis *router.Disables
	cfg Config

	numVC   int
	packets []*packet
	queues  [][]*packet // per source node address, injection order
	seqs    map[[2]int]int

	// links holds one bounded flit channel per buffer key
	// (channel*VirtualChannels + vc): the input FIFO the downstream
	// device drains. Capacity = FIFODepth.
	links []chan flit
	// outMu guards worm allocation of each downstream buffer: a header
	// takes the key's mutex, the tail's send releases it — wormhole
	// channel allocation as a critical section.
	outMu []sync.Mutex

	// Per-channel tables, indexed by ChannelID (precomputed, read-only
	// after New).
	chDstIsNode []bool
	chSrcPort   []int    // output port number driving the channel
	chAllowed   [][]bool // disable row at (dst router, dst port); nil for ejection
	chLink      []topology.LinkID

	deadLink []atomic.Bool // mid-run fault injection, checked at each header turn

	// Progress instrumentation for the watchdog: progress counts every
	// completed send/receive, wireFlits the flits inside a LinkDelay
	// crossing, waiting[k] records 1 + the buffer key the worm resident
	// in buffer k needs next (0 = not blocked downstream).
	progress    atomic.Uint64
	wireFlits   atomic.Int64
	outstanding atomic.Int64
	waiting     []atomic.Int64

	abort     chan struct{} // closed once: cancel, watchdog abort, or post-drain teardown
	stopOnce  sync.Once
	done      chan struct{} // closed once: every packet delivered or dropped
	doneOnce  sync.Once
	wg        sync.WaitGroup
	startOnce sync.Once

	mu        sync.Mutex
	res       Result
	delivered []bool
	dropped   []bool
	lastSeq   map[[2]int]int
}

// New creates a live fabric over a network with the given disable
// matrix (router.AllowAll for an unrestricted crossbar).
func New(net *topology.Network, dis *router.Disables, cfg Config) *Fabric {
	cfg = cfg.withDefaults()
	numCh := net.NumChannels()
	numKeys := numCh * cfg.VirtualChannels
	f := &Fabric{
		net:         net,
		dis:         dis,
		cfg:         cfg,
		numVC:       cfg.VirtualChannels,
		queues:      make([][]*packet, net.NumNodes()),
		seqs:        make(map[[2]int]int),
		links:       make([]chan flit, numKeys),
		outMu:       make([]sync.Mutex, numKeys),
		chDstIsNode: make([]bool, numCh),
		chSrcPort:   make([]int, numCh),
		chAllowed:   make([][]bool, numCh),
		chLink:      make([]topology.LinkID, numCh),
		deadLink:    make([]atomic.Bool, net.NumLinks()),
		waiting:     make([]atomic.Int64, numKeys),
		abort:       make(chan struct{}),
		done:        make(chan struct{}),
		lastSeq:     make(map[[2]int]int),
	}
	for k := range f.links {
		f.links[k] = make(chan flit, cfg.FIFODepth)
	}
	for c := 0; c < numCh; c++ {
		ch := topology.ChannelID(c)
		src, dst := net.ChannelSrc(ch), net.ChannelDst(ch)
		f.chSrcPort[c] = src.Port
		f.chLink[c] = net.ChannelLink(ch)
		if net.Device(dst.Device).Kind == topology.Node {
			f.chDstIsNode[c] = true
		} else {
			// Aliases the live disable matrix, like the indexed engine.
			f.chAllowed[c] = dis.Row(dst.Device, dst.Port)
		}
	}
	return f
}

func (f *Fabric) key(ch topology.ChannelID, vc int) int {
	return int(ch)*f.numVC + vc
}

// AddPacket schedules a packet with an explicit route, mirroring the
// indexed engine's validation so the two backends accept the same jobs.
func (f *Fabric) AddPacket(spec sim.PacketSpec, route routing.Route) error {
	if spec.Flits < 1 {
		return fmt.Errorf("livefabric: packet needs at least 1 flit, got %d", spec.Flits)
	}
	if spec.Src < 0 || spec.Src >= len(f.queues) {
		return fmt.Errorf("livefabric: source %d is not a node address (network has %d nodes)",
			spec.Src, len(f.queues))
	}
	if route.Src != spec.Src || route.Dst != spec.Dst {
		return fmt.Errorf("livefabric: route %d->%d does not match spec %d->%d",
			route.Src, route.Dst, spec.Src, spec.Dst)
	}
	if len(route.Channels) < 2 {
		return fmt.Errorf("livefabric: route %d->%d has %d channels, need injection and ejection",
			route.Src, route.Dst, len(route.Channels))
	}
	for i := range route.Channels {
		if v := route.VCAt(i); v < 0 || v >= f.numVC {
			return fmt.Errorf("livefabric: route hop %d uses VC %d but the fabric has %d VCs",
				i, v, f.numVC)
		}
	}
	p := &packet{
		id:    len(f.packets),
		spec:  spec,
		route: route.Channels,
		vcs:   route.VCs,
		seq:   f.seqs[[2]int{spec.Src, spec.Dst}],
	}
	f.seqs[[2]int{spec.Src, spec.Dst}]++
	f.packets = append(f.packets, p)
	f.queues[spec.Src] = append(f.queues[spec.Src], p)
	return nil
}

// AddBatch routes each spec through the tables and schedules it.
func (f *Fabric) AddBatch(t *routing.Tables, specs []sim.PacketSpec) error {
	for _, spec := range specs {
		r, err := t.Route(spec.Src, spec.Dst)
		if err != nil {
			return err
		}
		if err := f.AddPacket(spec, r); err != nil {
			return err
		}
	}
	return nil
}

// KillLink fails a link mid-run: worms whose header has yet to turn onto
// either of its channels are discarded from then on (worms already
// committed finish normally — what a schedule delivered stays delivered).
// Safe to call concurrently with Run.
func (f *Fabric) KillLink(l topology.LinkID) {
	if int(l) >= 0 && int(l) < len(f.deadLink) {
		f.deadLink[l].Store(true)
	}
}

// Run executes the fabric until every packet is delivered or dropped,
// the watchdog declares deadlock, or ctx expires — then joins every
// goroutine and reports. A Fabric runs once.
func (f *Fabric) Run(ctx context.Context) Result {
	f.start()
	select {
	case <-f.done:
	case <-f.abort: // watchdog declared deadlock
	case <-ctx.Done():
		f.mu.Lock()
		f.res.Canceled = true
		f.mu.Unlock()
	}
	f.stop()
	f.wg.Wait()
	return f.snapshot()
}

// start spawns the whole goroutine fabric: one injector per active
// source, one goroutine per buffer key (forwarder at router inputs,
// consumer at ejection buffers), and the watchdog. Every spawn is
// joined by Run on the fabric WaitGroup.
func (f *Fabric) start() {
	f.startOnce.Do(func() {
		f.delivered = make([]bool, len(f.packets))
		f.dropped = make([]bool, len(f.packets))
		f.outstanding.Store(int64(len(f.packets)))
		if len(f.packets) == 0 {
			f.doneOnce.Do(func() { close(f.done) })
		}
		for src := range f.queues {
			if len(f.queues[src]) == 0 {
				continue
			}
			src := src
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				f.runInjector(src)
			}()
		}
		for k := range f.links {
			k := k
			if f.chDstIsNode[k/f.numVC] {
				f.wg.Add(1)
				go func() {
					defer f.wg.Done()
					f.runConsumer(k)
				}()
				continue
			}
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				f.runForwarder(k)
			}()
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.runWatchdog()
		}()
	})
}

// stop cancels the fabric: closing abort releases every select, and the
// deferred unlocks release every parked mutex waiter transitively.
func (f *Fabric) stop() {
	f.stopOnce.Do(func() { close(f.abort) })
}

// runInjector feeds one source node's packets into the network in
// injection order: allocate the injection buffer, push the worm flit by
// flit, release at the tail.
func (f *Fabric) runInjector(src int) {
	for _, p := range f.queues[src] {
		if !f.pushWorm(p) {
			return
		}
		f.mu.Lock()
		f.res.Injected++
		f.mu.Unlock()
	}
}

// pushWorm injects one whole packet into its route's first buffer.
// Returns false when the fabric aborted mid-worm.
func (f *Fabric) pushWorm(p *packet) bool {
	k := f.key(p.route[0], p.vcAt(0))
	f.outMu[k].Lock()
	defer f.outMu[k].Unlock()
	for i := 0; i < p.spec.Flits; i++ {
		if f.cfg.LinkDelay > 0 && !f.crossWire() {
			return false
		}
		select {
		case f.links[k] <- flit{pkt: p, idx: i, hop: 0}:
			f.progress.Add(1)
		case <-f.abort:
			return false
		}
	}
	return true
}

// runForwarder drains one router input buffer: receive each worm's
// header, then relay or discard the worm. One goroutine per buffer key
// is the literal reading of "router per goroutine, buffer per channel".
func (f *Fabric) runForwarder(k int) {
	for {
		var head flit
		select {
		case head = <-f.links[k]:
			f.progress.Add(1)
		case <-f.abort:
			return
		}
		if !f.relayWorm(k, head) {
			return
		}
	}
}

// relayWorm moves one worm (header already received) from input buffer
// k to the next buffer on its route. The header acquires the downstream
// buffer's mutex — the wormhole channel allocation — and the tail's
// send releases it; a blocked send inside the critical section is
// exactly a worm holding a buffer while waiting for the next, so a
// cyclic dependency wedges here for real. Returns false on abort.
func (f *Fabric) relayWorm(k int, head flit) bool {
	p := head.pkt
	hop := head.hop + 1
	next := p.route[hop]
	if !f.turnAllowed(head, next) {
		return f.drainWorm(k, head)
	}
	nk := f.key(next, p.vcAt(hop))
	f.waiting[k].Store(int64(nk) + 1)
	defer f.waiting[k].Store(0)
	f.outMu[nk].Lock()
	defer f.outMu[nk].Unlock()
	fl := head
	for {
		fl.hop = hop
		if f.cfg.LinkDelay > 0 && !f.crossWire() {
			return false
		}
		select {
		case f.links[nk] <- fl:
			f.progress.Add(1)
		case <-f.abort:
			return false
		}
		if fl.idx == p.spec.Flits-1 {
			return true
		}
		// Waiting for the worm's own next flit from upstream is not a
		// downstream dependency; keep it out of the wait-for snapshot.
		f.waiting[k].Store(0)
		select {
		case fl = <-f.links[k]:
			f.progress.Add(1)
		case <-f.abort:
			return false
		}
		f.waiting[k].Store(int64(nk) + 1)
	}
}

// turnAllowed checks the path-disable register and the fault state for
// a header about to turn onto channel next.
func (f *Fabric) turnAllowed(head flit, next topology.ChannelID) bool {
	if f.deadLink[f.chLink[next]].Load() {
		return false
	}
	row := f.chAllowed[head.pkt.route[head.hop]]
	return row == nil || row[f.chSrcPort[next]]
}

// drainWorm consumes the rest of a discarded worm from buffer k so the
// upstream allocation can release. Returns false on abort.
func (f *Fabric) drainWorm(k int, head flit) bool {
	f.markDropped(head.pkt)
	fl := head
	for fl.idx < fl.pkt.spec.Flits-1 {
		select {
		case fl = <-f.links[k]:
			f.progress.Add(1)
		case <-f.abort:
			return false
		}
	}
	return true
}

// runConsumer drains one ejection buffer, recording each tail flit as a
// delivery with the in-order check of §3.3.
func (f *Fabric) runConsumer(k int) {
	for {
		select {
		case fl := <-f.links[k]:
			f.progress.Add(1)
			if fl.idx == fl.pkt.spec.Flits-1 {
				f.markDelivered(fl.pkt)
			}
		case <-f.abort:
			return
		}
	}
}

// crossWire holds a flit on the wire for LinkDelay. Mid-wire flits
// count as progress for the watchdog, so long "cables" never read as
// quiescence. Returns false on abort.
func (f *Fabric) crossWire() bool {
	f.wireFlits.Add(1)
	defer f.wireFlits.Add(-1)
	t := time.NewTimer(f.cfg.LinkDelay)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.abort:
		return false
	}
}

func (f *Fabric) markDelivered(p *packet) {
	f.mu.Lock()
	fresh := !f.delivered[p.id] && !f.dropped[p.id]
	if fresh {
		f.delivered[p.id] = true
		f.res.Delivered++
		pair := [2]int{p.spec.Src, p.spec.Dst}
		if p.seq < f.lastSeq[pair] {
			f.res.InOrderViolations++
		} else {
			f.lastSeq[pair] = p.seq
		}
	}
	f.mu.Unlock()
	if fresh {
		f.resolve()
	}
}

func (f *Fabric) markDropped(p *packet) {
	f.mu.Lock()
	fresh := !f.delivered[p.id] && !f.dropped[p.id]
	if fresh {
		f.dropped[p.id] = true
		f.res.Dropped++
	}
	f.mu.Unlock()
	if fresh {
		f.resolve()
	}
}

// resolve retires one packet; the last one closes done and the run
// drains normally.
func (f *Fabric) resolve() {
	if f.outstanding.Add(-1) == 0 {
		f.doneOnce.Do(func() { close(f.done) })
	}
}

// snapshot assembles the final Result after every goroutine joined.
func (f *Fabric) snapshot() Result {
	f.mu.Lock()
	defer f.mu.Unlock()
	res := f.res
	res.DeliveredIDs = nil
	res.DroppedIDs = nil
	for id := range f.packets {
		if f.delivered[id] {
			res.DeliveredIDs = append(res.DeliveredIDs, id)
		}
		if f.dropped[id] {
			res.DroppedIDs = append(res.DroppedIDs, id)
		}
	}
	return res
}
