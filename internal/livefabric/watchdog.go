// The runtime deadlock watchdog: the live analogue of the indexed
// engine's idle-cycle deadlock detector, built from the same two pieces
// the static side uses — a quiescence criterion and a wait-for-graph
// witness. A run that makes no send/receive progress for a full epoch,
// with nothing mid-wire and packets still outstanding, has every worm
// parked; the watchdog then snapshots the blocked-downstream edges the
// forwarders publish (waiting[k] = the buffer key the worm resident in
// buffer k needs next), extracts a cycle with the same graph machinery
// fabricver uses on a CDG, renders it in the counterexample idiom, and
// cancels the run instead of letting the test suite hang.

package livefabric

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/topology"
)

// quietFallback is the number of consecutive quiescent epochs after
// which the watchdog cancels the run even without a cycle witness: a
// stuck run must never hang the suite, witness or not. Generous enough
// that a transiently raced snapshot re-samples many times first.
const quietFallback = 50

// runWatchdog samples the progress counter each epoch. Quiescence is
// only trusted when confirmed across a full epoch (two consecutive
// samples with an unchanged counter), nothing is mid-wire, and packets
// remain outstanding — so a slow-but-progressing run (LinkDelay far
// above Epoch) can never be declared deadlocked: its flits are always
// either moving or on a wire, both of which reset the quiet count.
func (f *Fabric) runWatchdog() {
	tick := time.NewTicker(f.cfg.Epoch)
	defer tick.Stop()
	last := f.progress.Load()
	quiet := 0
	for {
		select {
		case <-f.abort:
			return
		case <-f.done:
			return
		case <-tick.C:
		}
		cur := f.progress.Load()
		if cur != last || f.wireFlits.Load() > 0 || f.outstanding.Load() == 0 {
			last = cur
			quiet = 0
			continue
		}
		quiet++
		if quiet < 2 {
			continue
		}
		if cycle, ok := f.waitCycleSnapshot(); ok {
			f.declareDeadlock(cycle)
			return
		}
		if quiet >= quietFallback {
			f.declareDeadlock(nil)
			return
		}
	}
}

// waitCycleSnapshot builds the wait-for graph over buffer keys from the
// forwarders' published blocked-downstream edges and extracts a witness
// cycle — the Dally–Seitz argument run backwards: the cycle the static
// certificate promised could not exist has materialized at runtime.
func (f *Fabric) waitCycleSnapshot() ([]int, bool) {
	g := graph.NewDigraph(len(f.waiting))
	edges := 0
	for k := range f.waiting {
		if w := f.waiting[k].Load(); w > 0 {
			g.AddEdge(k, int(w)-1)
			edges++
		}
	}
	if edges == 0 {
		return nil, false
	}
	return g.FindCycle()
}

// declareDeadlock records the witness and cancels the run. keys is the
// wait-for cycle over buffer keys (nil when the fallback fired with no
// stable witness).
func (f *Fabric) declareDeadlock(keys []int) {
	f.mu.Lock()
	f.res.Deadlocked = true
	f.res.WaitCycle = nil
	f.res.Witness = nil
	for _, k := range keys {
		f.res.WaitCycle = append(f.res.WaitCycle, topology.ChannelID(k/f.numVC))
		f.res.Witness = append(f.res.Witness, f.keyString(k))
	}
	f.mu.Unlock()
	f.stop()
}

// keyString renders one buffer key in the fabricver counterexample
// idiom: the physical channel's endpoints, with the VC lane when the
// fabric has more than one.
func (f *Fabric) keyString(k int) string {
	ch := topology.ChannelID(k / f.numVC)
	if f.numVC == 1 {
		return f.net.ChannelString(ch)
	}
	return fmt.Sprintf("%s vc%d", f.net.ChannelString(ch), k%f.numVC)
}
