GO ?= go

.PHONY: all build test check race bench bench-smoke bench-json sweep-bench golden clean lint vet-lint lint-concurrency vet-conc codecert certify verify-fabric chaos-smoke serve-smoke livefabric

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the simlint multichecker (internal/analyzers) over the whole
# tree: the static half of the determinism contract. See README.md
# "Determinism contract" for the analyzers and the suppression directive.
lint:
	$(GO) build -o bin/simlint ./cmd/simlint
	bin/simlint ./...

# vet-lint runs the same suite through `go vet`'s unit-checker protocol —
# same findings, but batched per package by the go command (and applied to
# test files' packages too; the analyzers themselves skip _test.go files).
vet-lint:
	$(GO) build -o bin/simlint ./cmd/simlint
	$(GO) vet -vettool=$(abspath bin/simlint) ./...

# lint-concurrency runs only the deadlock/leak analyzers (blockcheck,
# chanclose, chanwait, goleak, lockorder) over internal/... — the
# acyclicity argument the simulator makes about fabrics, turned on our
# own code. See README.md "Code deadlock certificate v2".
lint-concurrency:
	$(GO) build -o bin/simlint ./cmd/simlint
	bin/simlint -enable blockcheck,chanclose,chanwait,goleak,lockorder ./internal/...

# vet-conc runs the stock go vet concurrency passes the simlint suite
# does not duplicate: copied locks, misused sync/atomic, and (pre-1.22
# semantics) loop-variable capture in goroutines.
vet-conc:
	$(GO) vet -copylocks -atomic -loopclosure ./...

# codecert regenerates the concurrency code certificate and byte-compares
# it against the committed golden; a concurrency change that alters the
# proof must re-commit the golden deliberately
# (go test ./internal/analysis/codecert -update).
codecert:
	$(GO) build -o bin/simlint ./cmd/simlint
	bin/simlint -certify > bin/codecert.json
	cmp bin/codecert.json internal/analysis/codecert/testdata/codecert.golden.json

# certify re-proves the Dally–Seitz deadlock-freedom certificate for every
# built-in topology × routing pair.
certify:
	$(GO) run ./cmd/deadlockcheck -all

# verify-fabric runs the whole-fabric static verifier over every built-in
# topology × routing pair: table consistency, CDG acyclicity, all-pairs
# reachability within the analytical hop bound, exact path disables, and
# single-fault survivability for every link and router. See README.md
# "Static fabric verification".
verify-fabric:
	$(GO) run ./cmd/fabricver -all

# check is the CI gate: go vet (plus its named concurrency passes), the
# simlint determinism suite, the
# concurrency analyzers plus their committed code certificate, the static
# deadlock certificates, the whole-fabric verification matrix, the full
# test suite under the race detector (the parallel experiment engine must
# be race-clean), one pass over every benchmark so a broken benchmark
# cannot land silently, and a small chaos-recovery campaign.
check: lint lint-concurrency vet-conc codecert certify verify-fabric
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) bench-smoke
	$(MAKE) chaos-smoke
	$(MAKE) serve-smoke
	$(MAKE) livefabric

# livefabric re-proves the concurrent backend's robustness matrix the way
# CI does: delivered-set equivalence, deadlock-iff-certificate, watchdog
# and leak-freedom tests under the race detector at GOMAXPROCS 1, 2, 4.
livefabric:
	GOMAXPROCS=1 $(GO) test -race -count=1 ./internal/livefabric/... ./internal/testutil/...
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/livefabric/... ./internal/testutil/...
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/livefabric/... ./internal/testutil/...

# chaos-smoke runs a small deterministic fault-recovery campaign on the
# dual fractahedron pair (link kill + link flap + router kill per trial)
# and writes the campaign JSON; equal seeds reproduce it byte for byte at
# any worker count.
chaos-smoke:
	mkdir -p bin
	$(GO) run ./cmd/chaos -trials 2 -packets 200 -flits 3 -seed 2 -json bin/chaos-smoke.json

# serve-smoke exercises the campaign server end to end with real
# processes: run a sweep to completion, run it again elsewhere and
# SIGKILL the server mid-campaign, restart on the same checkpoint/cache
# dirs, and require the resumed artifact byte-identical to the
# uninterrupted one; then prove a repeat submission is fully
# cache-served (computed-points counter flat, cache hits up). Server
# logs and the final /statusz land in bin/serve-smoke for CI to archive.
serve-smoke:
	mkdir -p bin
	$(GO) build -o bin/campaignd ./cmd/campaignd
	$(GO) run ./cmd/servesmoke -bin bin/campaignd -dir bin/serve-smoke

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-smoke runs every benchmark exactly once — a correctness pass (each
# benchmark validates its headline numbers), not a timing pass.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

# bench-json regenerates the committed benchmark baseline from a real
# timing run; review the diff like any golden file.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_SIM.json

# sweep-bench times the same sweep grid with 1 and 4 workers; rows are
# bit-identical, only wall clock differs (needs >1 CPU to show a speedup).
sweep-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimSweepWorkers' -benchtime 5x .

# golden regenerates the committed experiment fixtures; review the diff.
golden:
	$(GO) test ./internal/experiments -run Golden -update

clean:
	$(GO) clean ./...
