GO ?= go

.PHONY: all build test check race bench sweep-bench golden clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector (the parallel experiment engine must be race-clean).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# sweep-bench times the same sweep grid with 1 and 4 workers; rows are
# bit-identical, only wall clock differs (needs >1 CPU to show a speedup).
sweep-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSimSweepWorkers' -benchtime 5x .

# golden regenerates the committed experiment fixtures; review the diff.
golden:
	$(GO) test ./internal/experiments -run Golden -update

clean:
	$(GO) clean ./...
