// Transactions drives the ServerNet transaction layer of §1 over a
// fractahedral fabric: CPUs read and write I/O controllers, every data
// packet is acknowledged, and a controller's completion interrupt must
// never overtake the data it just wrote — the in-order requirement that
// §3.3 argues forces fixed routing paths.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/servernet"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	// The 16-CPU system of §2.2: one tetrahedron with fan-out routers.
	cfg := topology.Tetra(1, false)
	cfg.Fanout = true
	sys, _, err := core.NewFractahedron(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16-node ServerNet system (%s): %d routers\n\n", sys.Net.Name, sys.Net.NumRouters())

	e := servernet.NewEngine(sys, sim.Config{FIFODepth: 4})

	// CPUs 0-7, I/O controllers 8-15. Each CPU reads its boot image from a
	// controller, then the controller streams three DMA writes to the CPU
	// and raises a completion interrupt.
	type dma struct {
		writeIDs []int
		intID    int
	}
	dmas := make(map[int]dma)
	for cpu := 0; cpu < 8; cpu++ {
		ctrl := 8 + cpu
		e.ReadTx(cpu, ctrl, 32, cpu)
		var ids []int
		for k := 0; k < 3; k++ {
			ids = append(ids, e.WriteTx(ctrl, cpu, 48, 10+cpu))
		}
		dmas[cpu] = dma{writeIDs: ids, intID: e.InterruptTx(ctrl, cpu, 11+cpu)}
	}

	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d transactions in %d cycles (avg latency %.1f)\n",
		res.Completed, res.Sim.Cycles, res.AvgLatency)
	fmt.Printf("packets: %d delivered, %d network order violations\n",
		res.Sim.Delivered, res.Sim.InOrderViolations)
	fmt.Printf("interrupt-before-data violations: %d (must be 0 on fixed paths)\n\n",
		res.InterruptOvertakes)

	// Show one CPU's DMA timeline: writes complete (ack received at the
	// controller) and the interrupt lands at the CPU after the data did.
	d := dmas[3]
	fmt.Println("CPU 3 DMA timeline (cycle of completion):")
	for i, id := range d.writeIDs {
		fmt.Printf("  write %d: data acked at cycle %d\n", i, res.Outcomes[id].Completed)
	}
	fmt.Printf("  interrupt delivered at cycle %d\n", res.Outcomes[d.intID].Completed)
}
