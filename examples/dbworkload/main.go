// Dbworkload runs §3.0's commercial scenario — "an arbitrary set of CPU
// nodes trying to communicate with an arbitrary set of disk controller
// nodes over an extended period of time" — on the 64-node 4-2 fat tree and
// the 64-node fat fractahedron. Each network faces its own worst-case
// stream placement (the exact witness the contention matching produces),
// so the run shows the contention ratios of Table 2 operating: per-stream
// bandwidth collapses to roughly 1/12 flit/cycle on the fat tree but only
// 1/8 on the fractahedron.
package main

import (
	"fmt"
	"log"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	transfersPerCPU = 16
	flitsPerPacket  = 16
)

func main() {
	fmt.Println("database query pattern: adversarially placed CPU->disk streams,")
	fmt.Printf("%d transfers per CPU, %d flits per transfer\n\n", transfersPerCPU, flitsPerPacket)

	ftSys, _, err := core.NewFatTree(4, 2, 64)
	if err != nil {
		log.Fatal(err)
	}
	run("4-2 fat tree", ftSys)

	frSys, _, err := core.NewFatFractahedron(2)
	if err != nil {
		log.Fatal(err)
	}
	run("fat fractahedron", frSys)
}

func run(name string, sys *core.System) {
	// Find the topology's own worst simultaneous transfer set: the maximum
	// matching of streams over the most contended link.
	worst, err := contention.MaxLinkContention(sys.Tables)
	if err != nil {
		log.Fatal(err)
	}
	var cpus, disks []int
	for _, w := range worst.Witness {
		cpus = append(cpus, w.Src)
		disks = append(disks, w.Dst)
	}

	specs := workload.DatabaseQuery(cpus, disks, transfersPerCPU, flitsPerPacket)
	res, err := sys.Simulate(specs, sim.Config{FIFODepth: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: worst link %s carries %d simultaneous streams\n",
		name, sys.Net.ChannelString(worst.WorstChannel), worst.Max)
	fmt.Printf("  CPUs  %v\n  disks %v\n", cpus, disks)
	fmt.Printf("  completed %d transfers in %d cycles\n", res.Delivered, res.Cycles)
	fmt.Printf("  per-stream bandwidth %.4f flits/cycle (1/%d = %.4f); in order: %v\n\n",
		res.ThroughputFPC/float64(len(cpus)), worst.Max, 1.0/float64(worst.Max),
		res.InOrderViolations == 0)
}
