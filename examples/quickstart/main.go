// Quickstart: build the paper's 64-node fat fractahedron (Figure 7), route
// a packet through it, and run the full analysis suite — deadlock freedom,
// hop statistics, worst-case link contention, bisection bandwidth and cost.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A fat fractahedron of tetrahedral ensembles (Group=4, Down=2), two
	// levels deep: 8 level-1 tetrahedra of 8 nodes each, joined by 4
	// replicated level-2 layers. 48 six-port routers in total.
	sys, fract, err := core.NewFatFractahedron(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d nodes, %d routers, %d full-duplex links\n",
		sys.Net.Name, sys.Net.NumNodes(), sys.Net.NumRouters(), sys.Net.NumLinks())

	// Route node 6 -> node 54, the first transfer of the paper's §3.4
	// adversarial scenario, and show the path the routing tables induce.
	route, err := sys.Tables.Route(6, 54)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroute 6 -> 54 (%d router hops):\n", route.RouterHops())
	for _, dev := range route.Devices {
		d := sys.Net.Device(dev)
		fmt.Printf("  %-14s (%s)\n", d.Name, d.Kind)
	}

	// The address digits drive the route: 6 = 0o06, 54 = 0o66 — the top
	// digit differs, so the packet ascends to level 2 and descends.
	fmt.Printf("\naddress digits: src L2=%d L1=%d, dst L2=%d L1=%d\n",
		fract.Digit(6, 2), fract.Digit(6, 1), fract.Digit(54, 2), fract.Digit(54, 1))

	// One call computes everything the paper compares topologies on.
	a, err := sys.Analyze(core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalysis:\n")
	fmt.Printf("  deadlock: %v (CDG with %d channels, %d dependencies)\n",
		map[bool]string{true: "FREE", false: "POSSIBLE"}[a.Deadlock.Free],
		a.Deadlock.Channels, a.Deadlock.Deps)
	fmt.Printf("  hops: max=%d avg=%.2f (paper Table 2: 4.3 average)\n", a.Hops.Max, a.Hops.Mean)
	fmt.Printf("  worst-case link contention: %d:1\n", a.Contention.Max)
	fmt.Printf("  bisection bandwidth: %d links\n", a.Bisection.Cut)
	fmt.Printf("  cost: %d routers, %d inter-router cables\n", a.Cost.Routers, a.Cost.InterRouter)
}
