// Deadlockdemo reproduces Figure 1 live in the flit-level simulator: four
// long wormhole packets routed strictly clockwise around a four-router loop
// block one another in a circular wait. The demo then breaks the loop with
// a routing restriction (the essence of dimension-order routing and of
// ServerNet's path disables) and shows the same workload completing.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// Each node sends a 32-flit packet to the node two hops clockwise, so
	// every packet's head ends up waiting behind another packet's tail.
	specs := workload.Transfers(workload.RingDeadlockSet(4), 32)
	cfg := sim.Config{FIFODepth: 2, DeadlockThreshold: 500}

	fmt.Println("=== unrestricted clockwise routing (Figure 1) ===")
	unsafe, ring, err := core.NewRing(4, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := unsafe.SimulateUnrestricted(specs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d/4 packets; deadlocked=%v after %d cycles\n",
		res.Delivered, res.Deadlocked, res.Cycles)
	if res.Deadlocked {
		fmt.Println("wait-for cycle extracted from the stalled network:")
		for _, ch := range res.WaitCycle {
			fmt.Printf("  %s  (head flit waits here)\n", ring.ChannelString(ch))
		}
	}

	fmt.Println("\n=== restricted routing: the seam link is never used ===")
	safe, _, err := core.NewRing(4, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := safe.Simulate(specs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d/4 packets in %d cycles; deadlocked=%v\n",
		res2.Delivered, res2.Cycles, res2.Deadlocked)
	fmt.Println("\nbreaking one dependency edge of the loop is enough — the same")
	fmt.Println("principle behind dimension-order routing, the hypercube path")
	fmt.Println("disables of Figure 2, and the fractahedral routing of §2.4.")
}
