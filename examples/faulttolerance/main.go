// Faulttolerance demonstrates ServerNet's dual-fabric story (§1): two
// identical fractahedral fabrics with dual-ported nodes survive any single
// link or router failure by failing affected pairs over to the other
// fabric. It also quantifies §2's acknowledgment-path argument: with
// NON-reflexive routing, a fault can kill pairs whose forward path is
// perfectly healthy.
package main

import (
	"fmt"
	"log"

	"repro/internal/fabric"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	dual, err := fabric.NewDual(func() (*topology.Network, *routing.Tables) {
		f := topology.NewFractahedron(topology.Tetra(2, true))
		return f.Network, routing.Fractahedron(f)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dual fat-fractahedron fabrics: 2 x %d routers, %d dual-ported nodes\n\n",
		dual.Net[fabric.X].NumRouters(), dual.Net[fabric.X].NumNodes())

	// Inject a burst of faults into the X fabric: one router and two links.
	faults := fabric.NewFaults()
	var killedRouter topology.DeviceID = -1
	for _, d := range dual.Net[fabric.X].Devices() {
		if d.Kind == topology.Router {
			killedRouter = d.ID
			break
		}
	}
	faults.KillRouter(fabric.X, killedRouter)
	killed := 0
	for _, l := range dual.Net[fabric.X].Links() {
		a := dual.Net[fabric.X].Device(l.A.Device).Kind
		b := dual.Net[fabric.X].Device(l.B.Device).Kind
		if a == topology.Router && b == topology.Router {
			faults.KillLink(fabric.X, l.ID)
			if killed++; killed == 2 {
				break
			}
		}
	}
	fmt.Printf("injected %d faults into fabric X (router %s + 2 links)\n",
		faults.Count(), dual.Net[fabric.X].Device(killedRouter).Name)

	s, err := dual.Survey(faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pair survivability: %d pairs total, %d stay on X, %d fail over to Y, %d severed\n\n",
		s.Pairs, s.OnX, s.OnY, s.Severed)

	r, fab, err := dual.RouteWithFailover(faults, 0, 63)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route 0 -> 63 now uses fabric %v (%d hops)\n\n", fab, r.RouterHops())

	// §2's non-reflexive penalty, shown on a unidirectional ring.
	ring := topology.NewRing(8, 1)
	cw := routing.RingClockwise(ring)
	ringFaults := fabric.NewFaults()
	l, _ := ring.LinkAt(ring.Routers[0], topology.RingPortCW)
	ringFaults.KillLink(fabric.X, l)
	fwdOK, unusable, err := fabric.AckImpact(cw, ringFaults, fabric.X)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("non-reflexive routing penalty (8-ring, clockwise routes, 1 dead link):")
	fmt.Printf("  %d ordered pairs keep a healthy forward path\n", fwdOK)
	fmt.Printf("  %d of them are STILL unusable: their acknowledgment path crosses the fault\n", unusable)
	fmt.Println("  (reflexive routings lose zero such pairs — §2's argument for reflexive routes)")
}
