// Visualize writes SVG drawings of the paper's figures into ./figures/:
// the tetrahedron (Figure 4), the thin fractahedron (Figure 5), the 64-node
// 4-2 fat tree (Figure 6), the fat fractahedron drawn fat-tree-style
// (Figure 7), and the Figure 1 ring with its deadlock cycle highlighted.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/viz"
	"repro/internal/workload"
)

// routingFor builds the fractahedral tables for a heatmap profile.
func routingFor(f *topology.Fractahedron) *routing.Tables {
	return routing.Fractahedron(f)
}

func main() {
	dir := "figures"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, render func(f *os.File) error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := render(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	// Figure 4: a single tetrahedron.
	tetra := topology.NewFractahedron(topology.Tetra(1, false))
	write("figure4-tetrahedron.svg", func(f *os.File) error {
		return viz.WriteFractahedronSVG(f, tetra, viz.Options{})
	})

	// Figure 5: the thin fractahedron (two levels keep the drawing legible).
	thin := topology.NewFractahedron(topology.Tetra(2, false))
	write("figure5-thin-fractahedron.svg", func(f *os.File) error {
		return viz.WriteFractahedronSVG(f, thin, viz.Options{})
	})

	// Figure 6: the 64-node 4-2 fat tree.
	ft := topology.NewFatTree(4, 2, 64)
	write("figure6-fattree.svg", func(f *os.File) error {
		return viz.WriteFatTreeSVG(f, ft, viz.Options{})
	})

	// Figure 7: the fat fractahedron, drawn in the style of a fat tree.
	fat := topology.NewFractahedron(topology.Tetra(2, true))
	write("figure7-fat-fractahedron.svg", func(f *os.File) error {
		return viz.WriteFractahedronSVG(f, fat, viz.Options{})
	})

	// Load heatmap: Figure 7's network with links colored by uniform-load
	// utilization — the down-link concentration behind the 8:1 measurement.
	tb := func() map[topology.LinkID]float64 {
		prof, err := contention.Utilization(routingFor(fat))
		if err != nil {
			log.Fatal(err)
		}
		w := make(map[topology.LinkID]float64)
		for ch, c := range prof.PerChannel {
			w[fat.ChannelLink(ch)] += float64(c)
		}
		return w
	}()
	write("figure7-heatmap.svg", func(f *os.File) error {
		return viz.WriteFractahedronSVG(f, fat, viz.Options{Weights: tb})
	})

	// Figure 1: the ring deadlock, with the simulator's wait-for cycle
	// highlighted in red.
	unsafe, ring, err := core.NewRing(4, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := unsafe.SimulateUnrestricted(
		workload.Transfers(workload.RingDeadlockSet(4), 32),
		sim.Config{FIFODepth: 2, DeadlockThreshold: 300})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Deadlocked {
		log.Fatal("expected the Figure 1 deadlock")
	}
	write("figure1-ring-deadlock.svg", func(f *os.File) error {
		return viz.WriteSVG(f, ring.Network, ring.Routers[0], viz.Options{Highlight: res.WaitCycle})
	})
}
