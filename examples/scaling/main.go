// Scaling sweeps fractahedron depth (Table 1) and contrasts thin against
// fat variants on capacity, worst-case delay, bisection bandwidth and
// router cost — the cost/performance trade-off the paper's conclusion
// claims the topology family provides.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
)

func main() {
	fmt.Println("fractahedron scaling, N = 1..3 (tetrahedral, 6-port routers, no fan-out)")
	fmt.Println("variant | N | nodes | routers | links | max hops | bisection")
	for n := 1; n <= 3; n++ {
		for _, fat := range []bool{false, true} {
			variant := "thin"
			if fat {
				variant = "fat "
			}
			sys, f, err := core.NewFractahedron(topology.Tetra(n, fat))
			if err != nil {
				log.Fatal(err)
			}
			maxHops := 0
			if n <= 2 {
				a, err := sys.Analyze(core.AnalyzeOptions{SkipContention: true, SkipBisection: true})
				if err != nil {
					log.Fatal(err)
				}
				maxHops = a.Hops.Max
			} else {
				// Route the structural worst pair instead of all pairs: an
				// all-sevens source (router 3 at every level) forces an
				// intra hop before every thin ascent, and an all-fours
				// destination (router 2 everywhere) forces one at the apex
				// and after every descent, in both variants.
				worstSrc, worstDst := 0, 0
				for k := 0; k < n; k++ {
					worstSrc = worstSrc*8 + 7
					worstDst = worstDst*8 + 4
				}
				r, err := sys.Tables.Route(worstSrc, worstDst)
				if err != nil {
					log.Fatal(err)
				}
				maxHops = r.RouterHops()
			}
			bis := metrics.Bisection(f.Network, 0, 1) // structural seed cut
			fmt.Printf("%s    | %d | %5d | %7d | %5d | %8d | %d\n",
				variant, n, f.NumNodes(), f.NumRouters(), f.NumLinks(), maxHops, bis.Cut)
		}
	}

	fmt.Println("\nwith the fan-out stage (2 CPUs per fan-out router), capacity is 2*8^N:")
	for n := 1; n <= 3; n++ {
		cfg := topology.Tetra(n, true)
		cfg.Fanout = true
		fmt.Printf("  N=%d: %d CPUs\n", n, cfg.MaxNodes())
	}

	fmt.Println("\ntrade-off: the fat variant buys 4^N bisection and 3N-1 worst delay")
	fmt.Println("(vs 4 links and 4N-2 for thin) at the price of 4^k routers per level k.")
}
